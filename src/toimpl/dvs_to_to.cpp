#include "toimpl/dvs_to_to.h"

#include <algorithm>

#include "common/check.h"

namespace dvs::toimpl {

const char* to_string(Status s) {
  switch (s) {
    case Status::kNormal:
      return "normal";
    case Status::kSend:
      return "send";
    case Status::kCollect:
      return "collect";
  }
  return "?";
}

DvsToTo::DvsToTo(ProcessId self, const View& v0, DvsToToOptions options)
    : self_(self), options_(options) {
  if (v0.contains(self)) {
    current_ = v0;
    registered_.insert(v0.id());
  }
}

void DvsToTo::on_bcast(const AppMsg& a) { delay_.push_back(a); }

bool DvsToTo::can_label() const {
  if (delay_.empty() || !current_.has_value()) return false;
  // Correction 1: no labelling during recovery (Figure 5 as printed allows
  // it, which duplicates deliveries; printed_figure_mode reverts).
  return options_.printed_figure_mode || status_ == Status::kNormal;
}

void DvsToTo::apply_label() {
  DVS_REQUIRE("LABEL", can_label(), "at " << self_.to_string());
  const AppMsg a = delay_.front();
  delay_.pop_front();
  const Label l{current_->id(), nextseqno_, self_};
  if (content_.emplace(l, a).second && durability_.on_content) {
    durability_.on_content(l, a);
  }
  buffer_.push_back(l);
  ++nextseqno_;
}

std::optional<ClientMsg> DvsToTo::next_gpsnd() const {
  if (status_ == Status::kSend) {
    return ClientMsg{make_summary()};
  }
  if (status_ == Status::kNormal && !buffer_.empty()) {
    const Label& l = buffer_.front();
    auto it = content_.find(l);
    if (it != content_.end()) {
      return ClientMsg{LabeledAppMsg{l, it->second}};
    }
  }
  return std::nullopt;
}

ClientMsg DvsToTo::take_gpsnd() {
  auto m = next_gpsnd();
  DVS_REQUIRE("DVS-GPSND", m.has_value(), "at " << self_.to_string());
  if (status_ == Status::kSend) {
    status_ = Status::kCollect;
  } else {
    buffer_.pop_front();
  }
  return *m;
}

void DvsToTo::on_dvs_gprcv(const ClientMsg& m, ProcessId q) {
  confirm_check_needed_ = true;
  if (const auto* labeled = std::get_if<LabeledAppMsg>(&m)) {
    if (content_.emplace(labeled->label, labeled->msg).second &&
        durability_.on_content) {
      durability_.on_content(labeled->label, labeled->msg);
    }
    if (status_ == Status::kNormal || options_.printed_figure_mode) {
      order_.push_back(labeled->label);
      if (durability_.on_order_append) {
        durability_.on_order_append(labeled->label);
      }
    } else {
      // Defer the order append until establishment (correction 2). Deferred
      // labels are volatile: a crash before establishment loses them from
      // this replica, but they stay in content (journaled above) and are
      // recovered through the next state exchange.
      deferred_labels_.push_back(labeled->label);
    }
    return;
  }
  const auto* x = std::get_if<Summary>(&m);
  if (x == nullptr) {
    throw PreconditionViolation("DVS-TO-TO received an opaque client message");
  }
  for (const auto& [l, a] : x->con) {
    if (content_.emplace(l, a).second && durability_.on_content) {
      durability_.on_content(l, a);
    }
  }
  gotstate_[q] = *x;
  if (!current_.has_value()) return;
  const bool complete =
      std::all_of(current_->set().begin(), current_->set().end(),
                  [&](ProcessId r) { return gotstate_.contains(r); }) &&
      gotstate_.size() == current_->set().size();
  if (complete && status_ == Status::kCollect) {
    nextconfirm_ = maxnextconfirm(gotstate_);
    order_ = fullorder(gotstate_);
    // Replay deliveries that raced ahead of the state exchange
    // (correction 2). They carry labels created after the summaries were
    // built, so they cannot already be in fullorder; the guard is
    // defensive.
    std::set<Label> present(order_.begin(), order_.end());
    for (const Label& l : deferred_labels_) {
      if (present.insert(l).second) order_.push_back(l);
    }
    deferred_labels_.clear();
    highprimary_ = current_->id();
    if (durability_.on_establish) {
      durability_.on_establish(order_, nextconfirm_, highprimary_);
    }
    status_ = Status::kNormal;
    established_.insert(current_->id());
  }
}

void DvsToTo::on_dvs_safe(const ClientMsg& m, ProcessId q) {
  confirm_check_needed_ = true;
  if (const auto* labeled = std::get_if<LabeledAppMsg>(&m)) {
    safe_labels_.insert(labeled->label);
    return;
  }
  if (!std::holds_alternative<Summary>(m)) {
    throw PreconditionViolation("DVS-TO-TO got safe for an opaque message");
  }
  safe_exch_.insert(q);
  if (current_.has_value() && safe_exch_ == current_->set()) {
    for (const Label& l : fullorder(gotstate_)) safe_labels_.insert(l);
  }
}

void DvsToTo::on_dvs_newview(const View& v) {
  confirm_check_needed_ = true;
  if (current_.has_value()) {
    past_orders_[current_->id()] = order_;
  }
  current_ = v;
  nextseqno_ = 1;
  buffer_.clear();
  gotstate_.clear();
  safe_exch_.clear();
  safe_labels_.clear();
  deferred_labels_.clear();
  status_ = Status::kSend;
}

bool DvsToTo::can_confirm() const {
  if (!confirm_check_needed_) return false;
  const bool enabled = nextconfirm_ <= order_.size() &&
                       safe_labels_.contains(order_[nextconfirm_ - 1]);
  if (!enabled) confirm_check_needed_ = false;
  return enabled;
}

void DvsToTo::apply_confirm() {
  DVS_REQUIRE("CONFIRM", can_confirm(), "at " << self_.to_string());
  ++nextconfirm_;
  if (durability_.on_confirm) durability_.on_confirm(nextconfirm_);
  confirm_check_needed_ = true;  // the next order_ slot may be safe already
}

bool DvsToTo::can_register() const {
  return current_.has_value() && established_.contains(current_->id()) &&
         !registered_.contains(current_->id());
}

void DvsToTo::apply_register() {
  DVS_REQUIRE("DVS-REGISTER", can_register(), "at " << self_.to_string());
  registered_.insert(current_->id());
}

std::optional<std::pair<AppMsg, ProcessId>> DvsToTo::next_brcv() const {
  if (nextreport_ >= nextconfirm_) return std::nullopt;
  const Label& l = order_[nextreport_ - 1];
  auto it = content_.find(l);
  if (it == content_.end()) return std::nullopt;
  return std::make_pair(it->second, l.origin);
}

std::pair<AppMsg, ProcessId> DvsToTo::take_brcv() {
  auto r = next_brcv();
  DVS_REQUIRE("BRCV", r.has_value(), "at " << self_.to_string());
  ++nextreport_;
  if (durability_.on_report) durability_.on_report(nextreport_);
  return *r;
}

std::optional<ClientMsg> DvsToTo::poll_gpsnd() {
  if (status_ == Status::kSend) {
    status_ = Status::kCollect;
    return ClientMsg{make_summary()};
  }
  if (status_ == Status::kNormal && !buffer_.empty()) {
    auto it = content_.find(buffer_.front());
    if (it != content_.end()) {
      const Label l = buffer_.front();
      buffer_.pop_front();
      return ClientMsg{LabeledAppMsg{l, it->second}};
    }
  }
  return std::nullopt;
}

std::optional<std::pair<AppMsg, ProcessId>> DvsToTo::poll_brcv() {
  auto r = next_brcv();
  if (r.has_value()) {
    ++nextreport_;
    if (durability_.on_report) durability_.on_report(nextreport_);
  }
  return r;
}

void DvsToTo::set_durability_hooks(ToDurabilityHooks hooks) {
  durability_ = std::move(hooks);
}

void DvsToTo::restore(const ToDurableState& recovered) {
  content_.clear();
  content_.insert(recovered.content.begin(), recovered.content.end());
  order_ = recovered.order;
  nextconfirm_ = recovered.nextconfirm;
  nextreport_ = recovered.nextreport;
  highprimary_ = recovered.highprimary;
  // Per-incarnation state resets: no current view until the next
  // DVS-NEWVIEW, nothing buffered, nothing safe, nothing registered or
  // established (old views never become current again — the VS epoch floor
  // guarantees fresh, higher ids — so those sets are only ever consulted
  // for views this incarnation has seen).
  current_ = std::nullopt;
  status_ = Status::kNormal;
  nextseqno_ = 1;
  buffer_.clear();
  safe_labels_.clear();
  gotstate_.clear();
  safe_exch_.clear();
  registered_.clear();
  delay_.clear();
  established_.clear();
  deferred_labels_.clear();
  past_orders_.clear();
  confirm_check_needed_ = true;
}

ToDurableState DvsToTo::durable_state() const {
  ToDurableState s;
  s.content.insert(content_.begin(), content_.end());
  s.order = order_;
  s.nextconfirm = nextconfirm_;
  s.nextreport = nextreport_;
  s.highprimary = highprimary_;
  return s;
}

Summary DvsToTo::make_summary() const {
  Summary x;
  x.con.insert(content_.begin(), content_.end());
  x.ord = order_;
  x.next = nextconfirm_;
  x.high = highprimary_;
  return x;
}

std::optional<std::vector<Label>> DvsToTo::buildorder(const ViewId& g) const {
  if (current_.has_value() && current_->id() == g) return order_;
  auto it = past_orders_.find(g);
  if (it == past_orders_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dvs::toimpl
