#include "vsys/vs_node.h"

#include <algorithm>

#include "common/logging.h"

namespace dvs::vsys {

VsNode::VsNode(ProcessId self, std::optional<View> initial_view,
               net::Transport& net, sim::Simulator& sim, VsConfig config,
               VsCallbacks callbacks)
    : self_(self),
      net_(net),
      sim_(sim),
      config_(config),
      callbacks_(std::move(callbacks)),
      ticker_(sim, config.heartbeat_period, [this] { on_tick(); }),
      view_(std::move(initial_view)) {
  // Size the flat per-process arrays by the largest id in the universe
  // (ids are dense in practice, so this is ~one slot per process).
  ProcessId::Rep max_id = 0;
  for (ProcessId q : net_.processes()) max_id = std::max(max_id, q.value());
  const std::size_t slots = net_.processes().empty() ? 0 : max_id + 1;
  last_heard_.assign(slots, kNeverHeard);
  last_view_of_.assign(slots, PeerReport{});
  expected_data_seq_.assign(slots, 0);
  wm_.resize(slots);
  seq_retx_.assign(slots, RetxCursor{});
  if (view_.has_value()) {
    max_epoch_ = view_->id().epoch();
    view_members_.assign(view_->set().begin(), view_->set().end());
    reset_watermarks();
  }
}

void VsNode::start() {
  net_.attach(self_, [this](ProcessId from, const Bytes& data) {
    on_datagram(from, data);
  });
  // Assume everyone alive at start so the initial view is not immediately
  // reconfigured away.
  for (ProcessId q : net_.processes()) last_heard_[ix(q)] = sim_.now();
  // Token mode: the initial view's coordinator mints its token (later views
  // mint theirs in install()).
  if (config_.ordering == OrderingMode::kTokenRing && view_.has_value() &&
      *view_->set().begin() == self_) {
    held_token_ = Token{view_->id(), 1, 1};
    last_rotation_seen_ = 1;
    last_rotation_processed_ = 1;
  }
  ticker_.start();
}

void VsNode::gpsnd(const Msg& m) {
  if (callbacks_.on_gpsnd) callbacks_.on_gpsnd(m);
  if (!view_.has_value()) return;  // matches the spec: sends with ⊥ vanish
  ++stats_.msgs_sent;
  if (config_.ordering == OrderingMode::kTokenRing) {
    token_backlog_.push_back(m);
    if (held_token_.has_value()) service_token();
    return;
  }
  sent_data_.push_back(m);
  Data da{view_->id(), data_seq_out_++, m};
  if (config_.stability == StabilityMode::kWatermark) {
    da.wm_delivered = delivered_;
    da.wm_safe = safe_emitted_;
  }
  send_wire(sequencer(), da);
}

ProcessSet VsNode::estimate() const {
  ProcessSet est;
  est.insert(self_);
  for (ProcessId q : net_.processes()) {
    if (q != self_ && !suspected(q)) est.insert(q);
  }
  return est;
}

bool VsNode::suspected(ProcessId q) const {
  const sim::Time heard = last_heard_[ix(q)];
  if (heard == kNeverHeard) return true;
  return sim_.now() - heard > config_.suspect_timeout;
}

ProcessId VsNode::sequencer() const { return *view_->set().begin(); }

void VsNode::send_wire(ProcessId to, const WireMsg& m) {
  net_.send(self_, to, encode_reused(m));
}

const Bytes& VsNode::encode_reused(const WireMsg& m) {
  wire_writer_.clear();
  encode_into(m, wire_writer_);
  return wire_writer_.buffer();
}

namespace {
// Epoch journal record type: a u64 epoch, max-merged on replay (so
// duplicate records and snapshot/append interleavings are all idempotent).
constexpr std::uint8_t kEpochRecord = 1;
constexpr std::size_t kEpochCompactEvery = 32;
}  // namespace

void VsNode::bump_epoch(std::uint64_t epoch) {
  if (epoch <= max_epoch_) return;
  max_epoch_ = epoch;
  if (wal_.has_value()) {
    // Write-ahead: the epoch is durable before anything this event does
    // with it (ack, install) reaches the wire — restarts happen at event
    // boundaries, so log+act is atomic anyway, but the ordering keeps the
    // discipline explicit.
    wal_->append(kEpochRecord, [&](Writer& w) { w.u64(max_epoch_); });
    if (wal_->records_since_snapshot() >= kEpochCompactEvery) {
      wal_->snapshot(kEpochRecord, [&](Writer& w) { w.u64(max_epoch_); });
    }
  }
}

void VsNode::attach_storage(storage::StableStore& store,
                            const std::string& key) {
  wal_.emplace(store, key);
  wal_->snapshot(kEpochRecord, [&](Writer& w) { w.u64(max_epoch_); });
}

void VsNode::restore_epoch(std::uint64_t epoch) {
  max_epoch_ = std::max(max_epoch_, epoch);
  epoch_floor_ = epoch;
}

std::uint64_t VsNode::recover_epoch(const storage::StableStore& store,
                                    const std::string& key) {
  std::uint64_t epoch = 0;
  for (const storage::WalRecord& rec : storage::read_wal(store, key).records) {
    if (rec.type != kEpochRecord) continue;
    try {
      Reader r(rec.payload);
      epoch = std::max(epoch, r.u64());
    } catch (const DecodeError&) {
      break;  // treat an undecodable record as the end of the clean prefix
    }
  }
  return epoch;
}

void VsNode::on_datagram(ProcessId from, const Bytes& data) {
  // Receiving bytes is evidence of liveness even when they are garbage.
  last_heard_[ix(from)] = sim_.now();
  // The network may truncate or corrupt payloads in flight; a datagram
  // that does not decode is dropped like a lost message (the sender's
  // retransmission machinery recovers), never a crash.
  WireMsg m;
  try {
    m = decode(data);
  } catch (const DecodeError&) {
    ++stats_.decode_errors;
    return;
  }
  std::visit([&](const auto& inner) { handle(inner, from); }, m);
}

void VsNode::on_tick() {
  Heartbeat hb;
  hb.max_epoch = max_epoch_;
  if (view_.has_value()) {
    hb.view = view_->id();
    hb.delivered = delivered_;
    hb.token_rotation = last_rotation_seen_;
    hb.safe = safe_emitted_;
  }
  const Bytes& payload = encode_reused(WireMsg{hb});
  for (ProcessId q : net_.processes()) {
    if (q != self_) net_.send(self_, q, payload);
  }
  // Within-view reliability: the network may lose messages (short-lived
  // partitions). Sequencer mode: retransmit the head of my unadmitted DATA
  // stream. Both modes: each issuer resends, to every lagging member, the
  // SEQs it issued in the window the member is missing. The lag signal is
  // the watermark table — stalled rows (a peer whose published watermark
  // stopped advancing, whatever the transport) trip the holdoff cursor and
  // get the suffix re-fed, so kWatermark mode keeps explicit-ack liveness.
  if (view_.has_value()) {
    if (config_.ordering == OrderingMode::kSequencer) {
      if (own_acked_ < sent_data_.end_index()) {
        // Head-of-stream DATA retransmission, gated by the holdoff: the
        // original (or previous resend) may still be in flight, so resend
        // only after holdoff ticks without admission progress.
        if (own_acked_ != data_retx_acked_) {
          data_retx_acked_ = own_acked_;
          data_retx_idle_ = 0;
        }
        if (++data_retx_idle_ >= config_.retransmit_holdoff_ticks) {
          Data da{view_->id(), own_acked_ + 1, sent_data_.at_abs(own_acked_)};
          if (config_.stability == StabilityMode::kWatermark) {
            da.wm_delivered = delivered_;
            da.wm_safe = safe_emitted_;
          }
          send_wire(sequencer(), da);
          ++stats_.retransmits_sent;
          data_retx_idle_ = 0;
        } else {
          ++stats_.retransmits_skipped;
        }
      } else {
        data_retx_acked_ = own_acked_;
        data_retx_idle_ = 0;
      }
    }
    if (!issued_.empty()) {
      // Self included: the issuer's own copy of a SEQ travels through the
      // lossy network like everyone else's, so a dropped self-copy must be
      // retransmitted too or the issuer's delivery stream wedges forever.
      for (ProcessId q : view_members_) {
        const std::uint64_t have = wm_.delivered(ix(q));
        RetxCursor& cur = seq_retx_[ix(q)];
        if (have > cur.acked) {
          // The peer advanced since the last look: restart the holdoff, the
          // in-flight copies are doing their job.
          cur.acked = have;
          cur.idle_ticks = 0;
        }
        if (issued_.hi() <= have) {
          // The peer has everything I issued — nothing outstanding.
          cur.idle_ticks = 0;
          continue;
        }
        if (cur.sent_upto > have &&
            ++cur.idle_ticks < config_.retransmit_holdoff_ticks) {
          ++stats_.retransmits_skipped;
          continue;
        }
        // Resend up to 8 of my issued SEQs above the member's position
        // (the GC'd prefix is below every member's watermark, so the probe
        // window only ever misses seqnos another node issued).
        for (std::uint64_t s = have + 1; s <= have + 8; ++s) {
          Seq* sq = issued_.find(s);
          if (sq == nullptr) continue;
          if (config_.stability == StabilityMode::kWatermark) {
            // Refresh the stored piggyback: retransmits carry the issuer's
            // current watermarks, not the ones at first issue.
            sq->wm_delivered = delivered_;
            sq->wm_safe = safe_emitted_;
          }
          send_wire(q, *sq);
          cur.sent_upto = std::max(cur.sent_upto, s);
          ++stats_.retransmits_sent;
        }
        cur.idle_ticks = 0;
      }
    }
    if (config_.ordering == OrderingMode::kTokenRing) {
      // Serve a held token (idle tokens advance at tick pace) and
      // retransmit a forwarded token until its arrival is evidenced.
      if (held_token_.has_value()) service_token();
      if (forwarded_token_.has_value() &&
          last_rotation_seen_ < forwarded_token_->rotation) {
        send_wire(ring_successor(), *forwarded_token_);
      }
    }
  }
  // Coordinator duties: abort a stuck proposal, propose when the world has
  // changed.
  if (proposal_.has_value() && sim_.now() >= proposal_->deadline) {
    proposal_.reset();
    ++stats_.proposals_aborted;
    cooldown_until_ = sim_.now() + config_.propose_cooldown;
  }
  maybe_propose();
}

void VsNode::maybe_propose() {
  // Happy state: the view matches connectivity AND every connected peer
  // reports the same view. Checked without building the estimate set (this
  // runs every tick on every node): the view matches connectivity iff each
  // universe process's suspicion status matches its membership.
  if (view_.has_value()) {
    bool matches = true;
    for (ProcessId q : net_.processes()) {
      const bool alive = q == self_ || !suspected(q);
      if (alive != view_->contains(q)) {
        matches = false;
        break;
      }
    }
    if (matches) {
      bool peers_aligned = true;
      for (ProcessId q : view_members_) {
        if (q == self_) continue;
        const PeerReport& rec = last_view_of_[ix(q)];
        if (rec.reported &&
            (!rec.view.has_value() || *rec.view != view_->id())) {
          peers_aligned = false;
          break;
        }
      }
      if (peers_aligned) return;
    }
  }
  // A lost INSTALL can leave peers behind in an older view; only a fresh
  // proposal can unstick them.
  const ProcessSet est = estimate();
  if (est.empty() || *est.begin() != self_) return;      // not coordinator
  if (proposal_.has_value()) return;                     // already in flight
  if (sim_.now() < cooldown_until_) return;
  // A singleton estimate containing only a node that never had a view is
  // not worth forming (nothing to compute with); still allowed — the DVS
  // layer is what decides primariness. Propose it.
  const ViewId id{max_epoch_ + 1, self_};
  bump_epoch(id.epoch());
  View v{id, est};
  proposal_ = Proposal{v, {}, sim_.now() + config_.propose_timeout};
  ++stats_.proposals_started;
  DVS_LOG_DEBUG("vsys", self_.to_string() << " proposes " << v.to_string());
  const Bytes& payload = encode_reused(WireMsg{Propose{v}});
  for (ProcessId q : v.set()) net_.send(self_, q, payload);
}

void VsNode::handle(const Heartbeat& hb, ProcessId from) {
  bump_epoch(hb.max_epoch);
  PeerReport& rec = last_view_of_[ix(from)];
  rec.reported = true;
  rec.view = hb.view;
  if (view_.has_value() && hb.view.has_value() && *hb.view == view_->id()) {
    last_rotation_seen_ = std::max(last_rotation_seen_, hb.token_rotation);
    if (forwarded_token_.has_value() &&
        last_rotation_seen_ >= forwarded_token_->rotation) {
      forwarded_token_.reset();
    }
    // Raise the sender's watermark rows. The table's incremental minimum
    // makes the common no-progress heartbeat O(1): only a raise that moved
    // the binding minimum (the frontier) can advance stability.
    const bool advanced = wm_.raise_delivered(ix(from), hb.delivered);
    wm_.raise_safe(ix(from), hb.safe);
    if (advanced) try_emit_safe();
  }
}

void VsNode::handle(const Propose& pr, ProcessId from) {
  bump_epoch(pr.view.id().epoch());
  // Recovery floor: a previous incarnation may have acked a proposal at or
  // below the recovered epoch; never ack in that range again.
  if (pr.view.id().epoch() <= epoch_floor_) return;
  if (!pr.view.contains(self_)) return;
  if (view_.has_value() && !(pr.view.id() > view_->id())) return;
  if (max_acked_.has_value() && !(pr.view.id() > *max_acked_)) return;
  max_acked_ = pr.view.id();
  send_wire(from, FlushAck{pr.view.id()});
}

void VsNode::handle(const FlushAck& fa, ProcessId from) {
  if (!proposal_.has_value() || fa.proposed != proposal_->view.id()) return;
  proposal_->acked.insert(from);
  const ProcessSet& members = proposal_->view.set();
  if (std::includes(proposal_->acked.begin(), proposal_->acked.end(),
                    members.begin(), members.end())) {
    const View v = proposal_->view;
    proposal_.reset();
    cooldown_until_ = sim_.now() + config_.propose_cooldown;
    const Bytes& payload = encode_reused(WireMsg{Install{v}});
    for (ProcessId q : v.set()) net_.send(self_, q, payload);
  }
}

void VsNode::handle(const Install& in, ProcessId /*from*/) {
  bump_epoch(in.view.id().epoch());
  // Recovery floor: with view_ = ⊥ after a restart, a stale duplicated
  // Install from the crashed incarnation's era would otherwise be accepted,
  // breaking install monotonicity across incarnations.
  if (in.view.id().epoch() <= epoch_floor_) return;
  if (!in.view.contains(self_)) return;
  if (view_.has_value() && !(in.view.id() > view_->id())) return;
  install(in.view);
}

void VsNode::reset_watermarks() {
  member_rows_.clear();
  for (ProcessId q : view_members_) member_rows_.push_back(ix(q));
  wm_.reset(member_rows_);
}

void VsNode::install(const View& v) {
  view_ = v;
  view_members_.assign(v.set().begin(), v.set().end());
  data_seq_out_ = 1;
  sent_data_.clear();
  own_acked_ = 0;
  std::fill(expected_data_seq_.begin(), expected_data_seq_.end(), 0);
  next_seqno_out_ = 1;
  issued_.clear();
  token_backlog_.clear();
  held_token_.reset();
  forwarded_token_.reset();
  last_rotation_seen_ = 0;
  last_rotation_processed_ = 0;
  if (config_.ordering == OrderingMode::kTokenRing &&
      *v.set().begin() == self_) {
    // The view's coordinator mints the single logical token.
    held_token_ = Token{v.id(), 1, 1};
    last_rotation_seen_ = 1;
    last_rotation_processed_ = 1;
  }
  recv_buffer_.clear();
  seq_log_.clear();
  delivered_ = 0;
  safe_emitted_ = 0;
  reset_watermarks();
  std::fill(seq_retx_.begin(), seq_retx_.end(), RetxCursor{});
  data_retx_acked_ = 0;
  data_retx_idle_ = 0;
  if (proposal_.has_value() && !(proposal_->view.id() > v.id())) {
    proposal_.reset();
    ++stats_.proposals_superseded;
  }
  ++stats_.views_installed;
  DVS_LOG_DEBUG("vsys", self_.to_string() << " installs " << v.to_string());
  if (callbacks_.on_newview) callbacks_.on_newview(v);
}

void VsNode::apply_watermarks(ProcessId from, const ViewId& view,
                              std::uint64_t delivered, std::uint64_t safe) {
  if (config_.stability != StabilityMode::kWatermark) return;
  if (!view_.has_value() || view != view_->id()) return;
  const std::size_t row = ix(from);
  const std::uint64_t before = wm_.delivered(row);
  const bool advanced = wm_.raise_delivered(row, delivered);
  wm_.raise_safe(row, safe);
  if (wm_.delivered(row) != before) ++stats_.watermark_updates;
  if (advanced) try_emit_safe();
}

void VsNode::handle(const Data& da, ProcessId from) {
  // Sequencer role: order client payloads of the current view.
  if (config_.ordering != OrderingMode::kSequencer) return;
  if (!view_.has_value() || da.view != view_->id()) return;
  // Any same-view DATA frame carries the sender's current watermarks, even
  // one that loses the admission race below.
  apply_watermarks(from, da.view, da.wm_delivered, da.wm_safe);
  if (sequencer() != self_) return;
  // Admit each sender's stream contiguously; a gap (lost DATA) permanently
  // truncates that sender's stream in this view, preserving FIFO.
  auto& expected = expected_data_seq_[ix(from)];
  if (expected == 0) expected = 1;
  if (da.sender_seq != expected) {
    // Below the admission watermark = a retransmitted or duplicated DATA;
    // route it through the common suppression predicate so it is counted
    // like every other discarded redelivery. Above = a gap (lost DATA),
    // which permanently truncates the sender's stream — not a duplicate.
    if (da.sender_seq < expected) {
      (void)suppress_duplicate(da.sender_seq, expected - 1);
    }
    return;
  }
  ++expected;
  issue(da.payload, from, next_seqno_out_++);
}

void VsNode::issue(const Msg& payload, ProcessId origin, std::uint64_t seqno) {
  // Build the SEQ in its recycled retransmit-log slot and multicast from
  // there (one copy of the payload, no transient allocation).
  Seq& sq = issued_.insert(seqno);
  sq.view = view_->id();
  sq.seqno = seqno;
  sq.origin = origin;
  sq.payload = payload;
  if (config_.stability == StabilityMode::kWatermark) {
    sq.wm_delivered = delivered_;
    sq.wm_safe = safe_emitted_;
  } else {
    sq.wm_delivered = 0;
    sq.wm_safe = 0;
  }
  const Bytes& bytes = encode_reused(WireMsg{sq});
  for (ProcessId q : view_members_) {
    net_.send(self_, q, bytes);
    // The fresh multicast copy covers this seqno for every member; the tick
    // retransmitter holds off until the holdoff expires without progress.
    auto& cur = seq_retx_[ix(q)];
    cur.sent_upto = std::max(cur.sent_upto, seqno);
  }
}

void VsNode::handle(const Token& tk, ProcessId /*from*/) {
  if (config_.ordering != OrderingMode::kTokenRing) return;
  if (!view_.has_value() || tk.view != view_->id()) return;
  last_rotation_seen_ = std::max(last_rotation_seen_, tk.rotation);
  if (forwarded_token_.has_value() &&
      last_rotation_seen_ >= forwarded_token_->rotation) {
    forwarded_token_.reset();
  }
  if (suppress_duplicate(tk.rotation, last_rotation_processed_)) return;
  last_rotation_processed_ = tk.rotation;
  held_token_ = tk;
  // If there is work, order it immediately; otherwise the token advances at
  // the next tick (idle circulation at heartbeat pace).
  if (!token_backlog_.empty()) service_token();
}

ProcessId VsNode::ring_successor() const {
  auto it = view_->set().upper_bound(self_);
  return it == view_->set().end() ? *view_->set().begin() : *it;
}

void VsNode::service_token() {
  Token tk = *held_token_;
  std::size_t issued_now = 0;
  while (!token_backlog_.empty() && issued_now < config_.token_backlog_cap) {
    issue(token_backlog_.front(), self_, tk.next_seqno++);
    token_backlog_.pop_front();
    ++issued_now;
  }
  held_token_.reset();
  Token next{tk.view, tk.rotation + 1, tk.next_seqno};
  if (ring_successor() == self_) {
    // Singleton view: keep the token, just advance the rotation.
    held_token_ = next;
    last_rotation_seen_ = std::max(last_rotation_seen_, next.rotation);
    last_rotation_processed_ = next.rotation;
    return;
  }
  forwarded_token_ = next;
  send_wire(ring_successor(), next);
}

void VsNode::handle(const Seq& sq, ProcessId from) {
  if (!view_.has_value() || sq.view != view_->id()) return;
  // The frame carries the issuer's watermarks whether or not the SEQ
  // itself is a duplicate.
  apply_watermarks(from, sq.view, sq.wm_delivered, sq.wm_safe);
  if (suppress_duplicate(sq.seqno, delivered_,
                         recv_buffer_.contains(sq.seqno))) {
    return;
  }
  auto& slot = recv_buffer_.insert(sq.seqno);
  slot.first = sq.origin;
  slot.second = sq.payload;
  if (sq.origin == self_) {
    ++own_acked_;
    // The admitted prefix of my send log is never retransmitted again.
    while (sent_data_.base() < own_acked_ && !sent_data_.empty()) {
      sent_data_.pop_front();
    }
  }
  try_deliver();
}

bool VsNode::suppress_duplicate(std::uint64_t n,
                                std::uint64_t processed_watermark,
                                bool buffered) {
  if (n > processed_watermark && !buffered) return false;
  ++stats_.duplicates_suppressed;
  return true;
}

void VsNode::try_deliver() {
  bool delivered_any = false;
  for (auto* slot = recv_buffer_.find(delivered_ + 1); slot != nullptr;
       slot = recv_buffer_.find(delivered_ + 1)) {
    ++delivered_;
    // Move the payload into the log and deliver from there — the delivered
    // message is needed again for safe emission, but not twice. The log
    // slot is recycled (assigned over), not rebuilt.
    auto& entry = seq_log_.append_slot();
    entry.first = slot->first;
    entry.second = std::move(slot->second);
    recv_buffer_.erase(delivered_);
    wm_.raise_delivered(ix(self_), delivered_);
    ++stats_.msgs_delivered;
    if (callbacks_.on_gprcv) {
      callbacks_.on_gprcv(entry.second, entry.first);
    }
    delivered_any = true;
  }
  if (delivered_any) try_emit_safe();
}

std::size_t VsNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self_.to_string() + "\"}";
  return metrics.add_collector([this, &metrics, label] {
    metrics.counter("vs.proposals_started" + label)
        .set(stats_.proposals_started);
    metrics.counter("vs.proposals_aborted" + label)
        .set(stats_.proposals_aborted);
    metrics.counter("vs.proposals_superseded" + label)
        .set(stats_.proposals_superseded);
    metrics.counter("vs.views_installed" + label).set(stats_.views_installed);
    metrics.counter("vs.msgs_sent" + label).set(stats_.msgs_sent);
    metrics.counter("vs.msgs_delivered" + label).set(stats_.msgs_delivered);
    metrics.counter("vs.safes_emitted" + label).set(stats_.safes_emitted);
    metrics.counter("vs.decode_errors" + label).set(stats_.decode_errors);
    metrics.counter("vs.duplicates_suppressed" + label)
        .set(stats_.duplicates_suppressed);
    metrics.counter("vs.retransmits_sent" + label)
        .set(stats_.retransmits_sent);
    metrics.counter("vs.retransmits_skipped" + label)
        .set(stats_.retransmits_skipped);
    metrics.counter("vs.watermark_updates" + label)
        .set(stats_.watermark_updates);
    metrics.counter("vs.watermark_gc" + label).set(stats_.watermark_gc);
    metrics.counter("vs.watermark_min_delivered" + label)
        .set(wm_.min_delivered());
    metrics.counter("vs.watermark_min_safe" + label).set(wm_.min_safe());
  });
}

void VsNode::try_emit_safe() {
  if (!view_.has_value()) return;
  // Stability = the watermark table's delivered minimum over the view's
  // members (self included — its row is raised in try_deliver).
  const std::uint64_t stable = wm_.min_delivered();
  while (safe_emitted_ < stable) {
    const auto& [origin, payload] = seq_log_.at_abs(safe_emitted_);
    ++safe_emitted_;
    ++stats_.safes_emitted;
    if (callbacks_.on_safe) callbacks_.on_safe(payload, origin);
  }
  // Publish my safe watermark and garbage-collect what stability covers:
  // the delivered log below my safe point (only safe emission reads it)
  // and my issued-SEQ log below every member's delivered row (no member
  // can need those retransmitted again).
  wm_.raise_safe(ix(self_), safe_emitted_);
  while (seq_log_.base() < safe_emitted_ && !seq_log_.empty()) {
    seq_log_.pop_front();
  }
  if (!issued_.empty()) {
    const std::size_t before = issued_.size();
    issued_.erase_below(stable + 1);
    stats_.watermark_gc += before - issued_.size();
  }
}

}  // namespace dvs::vsys
