// Distributed implementation of the VS service (one node per process).
//
// Architecture (coordinator-driven membership + per-view sequencer):
//  * Failure detection — every node broadcasts HEARTBEAT to the whole
//    universe; a process unheard-from for suspect_timeout is suspected.
//  * Membership — when a node's connectivity estimate differs from its
//    installed view and it is the smallest process id in the estimate, it
//    proposes a fresh view ⟨(max_epoch+1, self), estimate⟩. Members accept
//    (FLUSH_ACK) proposals with ids above anything they have installed or
//    acked; once all proposed members ack, the coordinator INSTALLs the
//    view. Aborted proposals (timeout) simply retry later with higher
//    epochs. Concurrent coordinators in different partitions mint distinct
//    ids (the proposer is the tie-breaker), so view ids are globally unique.
//  * Total order within a view — the smallest member is the sequencer:
//    senders unicast DATA to it, it assigns consecutive sequence numbers
//    and multicasts SEQ; members deliver contiguously. Links are FIFO, so
//    per-sender FIFO is preserved.
//  * Safe — each member publishes its contiguously-delivered count and its
//    safe watermark for the current view in a per-member watermark table
//    (SST style); a message is safe at q once the table's delivered
//    minimum reaches it. Rows are raised from heartbeats in both stability
//    modes; in kWatermark mode (the default) DATA/SEQ frames additionally
//    piggyback the sender's watermarks, so stability advances at data rate
//    instead of heartbeat rate. Reconfiguration (the PROPOSE/FLUSH_ACK/
//    INSTALL agreement) always uses explicit acks — the watermark table is
//    a within-view optimization only and is reset on install.
//
// Safety matches the VS specification (Figure 1): view ids are unique with
// consistent memberships, installs are monotone per process, messages are
// delivered only in the view they were sent in, every member receives a
// prefix of one per-view total order, and safe indications imply receipt at
// every member. tests/vsys replay recorded traces through the VS acceptor.
//
// Failure models: a *pause* (net::SimNetwork::pause, FaultPlan kCrash)
// silences a node with state intact — in the asynchronous model that is
// indistinguishable from a very slow process. A *restart* (FaultPlan
// kRestart, tosys::Cluster::restart) tears the node down and rebuilds it
// from stable storage: only max_epoch survives (attach_storage journals
// every epoch bump). A restarted node rejoins with no view; the recovered
// epoch doubles as a floor below which Propose/Install are refused, so the
// node can never re-ack a proposal it may have acked in a previous
// incarnation or re-install a stale duplicated view — installs stay
// monotone across incarnations, and every post-restart view id is fresh
// ("incarnation-tagged" by an epoch above everything the crashed
// incarnation saw).
//
// Steady-state allocation discipline: the per-view queues are ring buffers
// and sequence-number windows (common/ring.h) whose slots are recycled, the
// delivered log and the issued-SEQ log garbage-collect the prefix covered
// by the watermark table, and wire encoding reuses one scratch Writer — so
// a stable view's delivery path performs no heap allocation once the rings
// reach their high-water marks (tests/perf/test_alloc_free.cpp holds the
// line).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/messages.h"
#include "common/ring.h"
#include "common/types.h"
#include "common/view.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "storage/wal.h"
#include "vsys/watermarks.h"
#include "vsys/wire.h"

namespace dvs::vsys {

/// Within-view total-order strategy.
enum class OrderingMode {
  /// The smallest member sequences everyone's messages (Isis/Amoeba style):
  /// two hops to order, sequencer is a hot spot.
  kSequencer,
  /// A token rotates around the members; the holder assigns positions to
  /// its own backlog (Totem style): no hot spot, but idle latency is bound
  /// to the token circulation time.
  kTokenRing,
};

/// Within-view stability (safe-indication) strategy. Reconfiguration is
/// explicit-ack in both modes; this only selects how delivery watermarks
/// propagate inside an installed view.
enum class StabilityMode {
  /// Watermarks travel on heartbeats only (the pre-watermark behavior —
  /// kept as the differential baseline; see test_watermark_equivalence).
  kExplicitAck,
  /// Heartbeats plus watermark piggybacks on every DATA/SEQ frame: the
  /// per-member table advances at data rate, cutting safe latency and
  /// letting retransmission cursors see peer progress sooner.
  kWatermark,
};

struct VsConfig {
  sim::Time heartbeat_period = 20 * sim::kMillisecond;
  sim::Time suspect_timeout = 100 * sim::kMillisecond;
  sim::Time propose_timeout = 250 * sim::kMillisecond;
  sim::Time propose_cooldown = 50 * sim::kMillisecond;
  OrderingMode ordering = OrderingMode::kSequencer;
  StabilityMode stability = StabilityMode::kWatermark;
  /// Token mode: max messages a holder issues per rotation (fairness cap).
  std::size_t token_backlog_cap = 16;
  /// Tick retransmission holdoff: once a copy covering a peer's missing
  /// suffix is in flight, wait this many ticks without ack progress before
  /// resending to that peer. 1 restores the old resend-every-tick behavior;
  /// higher values cut redundant retransmissions while acks propagate (one
  /// heartbeat round-trip ≈ 2 ticks) at the cost of slower loss recovery.
  std::size_t retransmit_holdoff_ticks = 2;
};

struct VsCallbacks {
  std::function<void(const View&)> on_newview;
  std::function<void(const Msg&, ProcessId from)> on_gprcv;
  std::function<void(const Msg&, ProcessId from)> on_safe;
  /// Observer: fires on every gpsnd call (trace recording); not part of the
  /// service semantics.
  std::function<void(const Msg&)> on_gpsnd;
};

struct VsNodeStats {
  std::uint64_t proposals_started = 0;
  std::uint64_t proposals_aborted = 0;
  /// In-flight proposals discarded because a view at or above the proposed
  /// id was installed first (distinct from timeout aborts).
  std::uint64_t proposals_superseded = 0;
  std::uint64_t views_installed = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t safes_emitted = 0;
  /// Datagrams dropped because they failed to decode (truncated or
  /// corrupted in flight — the network's payload-truncation fault).
  std::uint64_t decode_errors = 0;
  /// Redelivered SEQs/tokens discarded by the duplicate-suppression path.
  std::uint64_t duplicates_suppressed = 0;
  /// Tick retransmissions actually sent (DATA head + SEQ window copies) and
  /// ones skipped because a covering copy was still in flight within the
  /// holdoff — the per-destination cursor win shows as skipped >> sent.
  std::uint64_t retransmits_sent = 0;
  std::uint64_t retransmits_skipped = 0;
  /// Watermark-table rows raised by DATA/SEQ piggybacks (kWatermark mode
  /// only; heartbeat-driven raises are the baseline and are not counted).
  std::uint64_t watermark_updates = 0;
  /// Issued-SEQ log entries garbage-collected once the table's delivered
  /// minimum covered them (no member can need a retransmission below it).
  std::uint64_t watermark_gc = 0;
};

class VsNode {
 public:
  /// `initial_view` is v0 for members of the initial membership, nullopt
  /// for processes that join later.
  VsNode(ProcessId self, std::optional<View> initial_view,
         net::Transport& net, sim::Simulator& sim, VsConfig config,
         VsCallbacks callbacks);

  /// Replaces the callbacks; must be called before start().
  void set_callbacks(VsCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Attaches to the network and starts the heartbeat/membership timer.
  void start();

  /// Client send (VS-GPSND). Dropped when the node has no view, matching
  /// the specification.
  void gpsnd(const Msg& m);

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const std::optional<View>& view() const { return view_; }
  [[nodiscard]] const VsNodeStats& stats() const { return stats_; }
  /// The per-member stability table of the current view (rows indexed by
  /// dense ProcessId). Exposed for tests and metrics.
  [[nodiscard]] const WatermarkTable& watermarks() const { return wm_; }

  /// The node's current connectivity estimate (failure-detector output).
  [[nodiscard]] ProcessSet estimate() const;

  /// Registers a collector that publishes VsNodeStats as
  /// vs.*{process="pN"} counters. Returns the collector id so an owner that
  /// rebuilds the node (crash-restart) can remove the stale collector.
  std::size_t bind_metrics(obs::MetricsRegistry& metrics);

  // ----- durability (crash-restart recovery) -------------------------------

  /// Starts journaling epoch bumps into `store` at `key` (and writes the
  /// current epoch as the baseline snapshot). Call before start().
  void attach_storage(storage::StableStore& store, const std::string& key);

  /// Reinstates a recovered epoch after a crash-restart: max_epoch is
  /// raised to `epoch`, and `epoch` becomes a floor — Propose/Install with
  /// view ids at or below it are refused (see the header comment). Call
  /// before start(), on a node constructed with no initial view.
  void restore_epoch(std::uint64_t epoch);

  /// Replays the epoch journal at `key`; 0 if absent/empty (corrupt tails
  /// are discarded — the clean prefix is enough, appends are max-merges).
  [[nodiscard]] static std::uint64_t recover_epoch(
      const storage::StableStore& store, const std::string& key);

 private:
  void on_datagram(ProcessId from, const Bytes& data);
  void on_tick();

  void handle(const Heartbeat& hb, ProcessId from);
  void handle(const Propose& pr, ProcessId from);
  void handle(const FlushAck& fa, ProcessId from);
  void handle(const Install& in, ProcessId from);
  void handle(const Data& da, ProcessId from);
  void handle(const Seq& sq, ProcessId from);
  void handle(const Token& tk, ProcessId from);

  void maybe_propose();
  void install(const View& v);
  /// Rebuilds the watermark table's member rows for the current view.
  void reset_watermarks();
  /// Applies a piggybacked (delivered, safe) pair published by `from` for
  /// `view` (kWatermark mode; no-op otherwise or across views).
  void apply_watermarks(ProcessId from, const ViewId& view,
                        std::uint64_t delivered, std::uint64_t safe);
  /// Token mode: issue up to the backlog cap and forward the token.
  void service_token();
  [[nodiscard]] ProcessId ring_successor() const;
  void issue(const Msg& payload, ProcessId origin, std::uint64_t seqno);
  /// The single duplicate-suppression predicate for redeliverable wire
  /// items (SEQs and tokens): item number `n` is a duplicate when it is at
  /// or below the already-processed watermark, or when it is already
  /// buffered awaiting contiguous delivery (`buffered`). Both redelivery
  /// paths route through here so duplicate injection exercises one tested
  /// code path; a hit is counted in stats().duplicates_suppressed.
  [[nodiscard]] bool suppress_duplicate(std::uint64_t n,
                                        std::uint64_t processed_watermark,
                                        bool buffered = false);
  void try_deliver();
  void try_emit_safe();
  /// Index of `q` in the flat per-process arrays (ids are dense).
  [[nodiscard]] std::size_t ix(ProcessId q) const {
    return static_cast<std::size_t>(q.value());
  }
  [[nodiscard]] bool suspected(ProcessId q) const;
  [[nodiscard]] ProcessId sequencer() const;  // min member of current view
  void send_wire(ProcessId to, const WireMsg& m);
  /// Encodes into the node's reused scratch Writer (valid until the next
  /// encode) — unicast sends and broadcasts avoid re-growing a fresh
  /// buffer per message.
  const Bytes& encode_reused(const WireMsg& m);
  void bump_epoch(std::uint64_t epoch);

  ProcessId self_;
  net::Transport& net_;
  sim::Simulator& sim_;
  VsConfig config_;
  VsCallbacks callbacks_;
  sim::PeriodicTimer ticker_;
  Writer wire_writer_;  // scratch buffer for encode_reused

  std::optional<View> view_;
  std::uint64_t max_epoch_ = 0;
  // Recovery floor: view ids with epoch ≤ epoch_floor_ are refused in
  // Propose/Install (0 for fresh nodes — live epochs start at 1).
  std::uint64_t epoch_floor_ = 0;
  std::optional<storage::Wal> wal_;  // epoch journal, when attached
  // Per-process state lives in flat arrays indexed by ProcessId::value()
  // (process ids are dense in practice; the arrays are sized by the largest
  // id in the universe at construction). These are touched on every datagram
  // and every heartbeat, where a std::map's pointer chasing dominated the
  // whole stack's profile.
  static constexpr sim::Time kNeverHeard = ~sim::Time{0};
  std::vector<sim::Time> last_heard_;
  // Last view id each peer reported in a heartbeat (nullopt = peer reported
  // having no view; reported == false = no report yet). Used to detect
  // stuck mixed-view states and trigger reconfiguration.
  struct PeerReport {
    bool reported = false;
    std::optional<ViewId> view;
  };
  std::vector<PeerReport> last_view_of_;

  // Coordinator-side proposal in flight.
  struct Proposal {
    View view;
    ProcessSet acked;
    sim::Time deadline;
  };
  std::optional<Proposal> proposal_;
  std::optional<ViewId> max_acked_;  // highest proposal this node accepted
  sim::Time cooldown_until_ = 0;

  // Per-view ordering state (reset on install). The queues are recycled
  // rings/windows (common/ring.h): clear() parks their slots, so across
  // views and in steady state they stop allocating.
  std::uint64_t data_seq_out_ = 1;  // sender-side per-view DATA counter
  // My sends this view, for head-of-stream retransmission; absolute index
  // n holds my (n+1)-th send, and the admitted prefix is GC'd.
  RingBuffer<Msg> sent_data_;
  std::uint64_t own_acked_ = 0;  // my messages the sequencer admitted
  std::vector<std::uint64_t> expected_data_seq_;  // sequencer role
  std::uint64_t next_seqno_out_ = 1;              // sequencer role
  // SEQs this node issued in the current view (sequencer: all of them;
  // token mode: the ones issued while holding the token), keyed by seqno,
  // for per-issuer retransmission to lagging members. The prefix below the
  // watermark table's delivered minimum is GC'd.
  SeqWindow<Seq> issued_;
  // Token-ring state (reset on install).
  RingBuffer<Msg> token_backlog_;          // my unsent client payloads
  std::optional<Token> held_token_;        // the token, while holding it
  std::optional<Token> forwarded_token_;   // awaiting evidence of arrival
  std::uint64_t last_rotation_seen_ = 0;   // highest rotation observed
  std::uint64_t last_rotation_processed_ = 0;
  SeqWindow<std::pair<ProcessId, Msg>> recv_buffer_;
  // Delivered messages in order (absolute index n = seqno n+1); the prefix
  // below safe_emitted_ is GC'd as safes are emitted.
  RingBuffer<std::pair<ProcessId, Msg>> seq_log_;
  std::uint64_t delivered_ = 0;
  std::uint64_t safe_emitted_ = 0;
  // Per-member stability table of the current view (replaces the flat
  // delivered_by_ array + O(members) min scan of the ack-only design).
  WatermarkTable wm_;
  // The current view's members as a contiguous list (mirrors view_->set()),
  // and their dense row indices for the watermark table.
  std::vector<ProcessId> view_members_;
  std::vector<std::size_t> member_rows_;
  // Per-destination retransmission cursors (reset on install): tick
  // retransmission resends only the suffix past the peer's acked position,
  // and only after retransmit_holdoff_ticks without progress while a
  // covering copy is in flight. Liveness is preserved: an outstanding
  // suffix is always resent once the holdoff expires, no matter how many
  // copies were lost before — in kWatermark mode a peer whose published
  // watermark stalls is therefore re-fed exactly like a silent acker.
  struct RetxCursor {
    std::uint64_t acked = 0;      // peer ack position at the last progress
    std::uint64_t sent_upto = 0;  // highest seqno a sent copy covers
    std::size_t idle_ticks = 0;   // ticks since progress or resend
  };
  std::vector<RetxCursor> seq_retx_;
  std::uint64_t data_retx_acked_ = 0;  // own_acked_ at the last head change
  std::size_t data_retx_idle_ = 0;

  VsNodeStats stats_;
};

}  // namespace dvs::vsys
