// SST-style per-member watermark table (Derecho idiom).
//
// Inside an installed view each member publishes two monotone counters —
// `delivered` (its contiguously-delivered prefix of the view's total
// order) and `safe` (the prefix it has emitted safe for). Stability is the
// minimum of the delivered column over the view's members; a message is
// safe exactly when stability reaches it, which is the paper's stability
// rule (a safe indication implies receipt at every member of the view).
//
// The table replaces the per-heartbeat O(members) stability scan with an
// incrementally maintained minimum: alongside each column's cached min we
// keep the count of members sitting at it. Raising a row above the min
// decrements the count; only when the count hits zero (the last binding
// row moved) does a rescan run — so the common no-progress heartbeat costs
// O(1) and the minimum still advances exactly when the old scan would have
// advanced it.
//
// The table is transport-agnostic: rows are raised from heartbeats (both
// stability modes) and from watermarks piggybacked on DATA/SEQ frames
// (watermark mode), and reconfiguration resets it — the explicit-ack view
// agreement protocol is untouched.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dvs::vsys {

class WatermarkTable {
 public:
  /// Sizes the dense ProcessId-indexed row array (call once, at node
  /// construction, with the universe's slot count).
  void resize(std::size_t slots) {
    delivered_.assign(slots, 0);
    safe_.assign(slots, 0);
    member_.assign(slots, 0);
  }

  /// Installs the member set of a fresh view and zeroes its rows. Member
  /// indices must be valid row indices.
  void reset(const std::vector<std::size_t>& member_rows) {
    std::fill(member_.begin(), member_.end(), std::uint8_t{0});
    members_ = member_rows;
    for (std::size_t r : members_) {
      member_[r] = 1;
      delivered_[r] = 0;
      safe_[r] = 0;
    }
    min_delivered_ = 0;
    at_min_delivered_ = members_.size();
    min_safe_ = 0;
    at_min_safe_ = members_.size();
  }

  /// Raises `row`'s delivered watermark to max(current, v). Returns true
  /// iff the column minimum advanced (the caller's cue to emit safes).
  bool raise_delivered(std::size_t row, std::uint64_t v) {
    return raise(delivered_, row, v, min_delivered_, at_min_delivered_);
  }

  /// Raises `row`'s safe watermark to max(current, v). Returns true iff
  /// the column minimum advanced.
  bool raise_safe(std::size_t row, std::uint64_t v) {
    return raise(safe_, row, v, min_safe_, at_min_safe_);
  }

  [[nodiscard]] std::uint64_t delivered(std::size_t row) const {
    return delivered_[row];
  }
  [[nodiscard]] std::uint64_t safe(std::size_t row) const {
    return safe_[row];
  }
  /// min over the current members' delivered rows == the view's stable
  /// prefix (0 when the member set is empty).
  [[nodiscard]] std::uint64_t min_delivered() const { return min_delivered_; }
  [[nodiscard]] std::uint64_t min_safe() const { return min_safe_; }
  [[nodiscard]] std::size_t members() const { return members_.size(); }

 private:
  bool raise(std::vector<std::uint64_t>& col, std::size_t row,
             std::uint64_t v, std::uint64_t& min, std::size_t& at_min) {
    // Non-member rows are ignored: a corrupted-but-decodable frame must
    // not be able to disturb the members' minimum.
    if (row >= member_.size() || member_[row] == 0) return false;
    std::uint64_t& cell = col[row];
    if (v <= cell) return false;
    const bool was_binding = cell == min;
    cell = v;
    if (!was_binding || members_.empty()) return false;
    if (--at_min > 0) return false;
    // The last row at the old minimum moved: rescan (rare — amortized over
    // the raises that drained the count).
    min = col[members_.front()];
    for (std::size_t r : members_) min = std::min(min, col[r]);
    at_min = 0;
    for (std::size_t r : members_) at_min += col[r] == min;
    return true;
  }

  std::vector<std::uint64_t> delivered_;
  std::vector<std::uint64_t> safe_;
  std::vector<std::uint8_t> member_;  // membership flag per row
  std::vector<std::size_t> members_;  // row indices of the current view
  std::uint64_t min_delivered_ = 0;
  std::size_t at_min_delivered_ = 0;
  std::uint64_t min_safe_ = 0;
  std::size_t at_min_safe_ = 0;
};

}  // namespace dvs::vsys
