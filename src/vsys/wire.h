// Wire protocol of the distributed view-synchronous layer (vsys).
//
// One datagram = one protocol message, encoded with common/serialize.h:
//   HEARTBEAT  — failure detection + epoch gossip + delivery ack (for safe)
//   PROPOSE    — coordinator proposes a new view (membership agreement)
//   FLUSH_ACK  — member accepts a proposal and stops old-view activity
//   INSTALL    — coordinator finalizes the view
//   DATA       — member sends a client payload to the view's sequencer
//   SEQ        — sequencer broadcasts the payload with its order number
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/messages.h"
#include "common/serialize.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::vsys {

struct Heartbeat {
  std::uint64_t max_epoch = 0;
  /// The sender's current view and contiguously-delivered count in it
  /// (absent when the sender has no view). Drives safe indications.
  std::optional<ViewId> view;
  std::uint64_t delivered = 0;
  /// Token-ring mode only: the highest token rotation the sender has
  /// observed in its current view (0 in sequencer mode). Lets the previous
  /// holder stop retransmitting the token.
  std::uint64_t token_rotation = 0;
  /// The sender's safe watermark in its current view (the prefix it has
  /// emitted safe indications for). Feeds the per-member watermark table's
  /// safe column; purely observational for the protocol itself.
  std::uint64_t safe = 0;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

struct Propose {
  View view;

  friend bool operator==(const Propose&, const Propose&) = default;
};

struct FlushAck {
  ViewId proposed;

  friend bool operator==(const FlushAck&, const FlushAck&) = default;
};

struct Install {
  View view;

  friend bool operator==(const Install&, const Install&) = default;
};

struct Data {
  ViewId view;
  /// Per-(sender, view) send counter, 1-based. The sequencer admits each
  /// sender's stream only in contiguous order and discards from the first
  /// gap onward, so a message lost in flight (e.g. to a short-lived
  /// partition) truncates that sender's stream instead of leaving a FIFO
  /// hole in the view's total order.
  std::uint64_t sender_seq = 0;
  Msg payload;
  /// Watermark piggyback (stability mode kWatermark): the sender's
  /// delivered and safe counters in `view` at send time, so stability
  /// information travels at data rate instead of heartbeat rate. Zero (and
  /// ignored) in explicit-ack mode.
  std::uint64_t wm_delivered = 0;
  std::uint64_t wm_safe = 0;

  friend bool operator==(const Data&, const Data&) = default;
};

struct Seq {
  ViewId view;
  std::uint64_t seqno = 0;  // 1-based position in the view's total order
  ProcessId origin;
  Msg payload;
  /// Watermark piggyback (stability mode kWatermark): the issuer's
  /// delivered and safe counters at issue/retransmit time. Zero (and
  /// ignored) in explicit-ack mode.
  std::uint64_t wm_delivered = 0;
  std::uint64_t wm_safe = 0;

  friend bool operator==(const Seq&, const Seq&) = default;
};

/// Token-ring ordering mode: the rotating permission to assign order
/// positions. Exactly one logical token exists per view; `rotation`
/// increments at every hop so retransmitted duplicates are discarded.
struct Token {
  ViewId view;
  std::uint64_t rotation = 0;
  std::uint64_t next_seqno = 1;  // next order position to assign

  friend bool operator==(const Token&, const Token&) = default;
};

using WireMsg =
    std::variant<Heartbeat, Propose, FlushAck, Install, Data, Seq, Token>;

[[nodiscard]] Bytes encode(const WireMsg& m);
/// Appends the encoding to `w` without allocating a fresh buffer — the
/// broadcast hot paths clear() and reuse one Writer per node.
void encode_into(const WireMsg& m, Writer& w);
[[nodiscard]] WireMsg decode(const Bytes& data);
[[nodiscard]] std::string to_string(const WireMsg& m);

// ----- shard-tagged group framing (src/shard) --------------------------------
//
// Many independent VS/DVS/TO columns ("shards") can share one transport.
// On a real wire every datagram is then prefixed with a group frame:
//
//   frame := kGroupFrameTag u8 | varuint group_id | payload bytes
//
// The tag byte sits outside both the vsys Tag range (1..7) and the BATCH
// envelope tag (net/batcher.h), so a receiver can always tell a group frame
// from legacy ungrouped traffic and from a coalesced envelope. group_id 0
// is reserved for the pool-level membership group. The simulated transport
// carries the group id structurally instead (SimNetwork group channels —
// the frame never changes simulated payload sizes), so the codec here is
// exercised by the real backends (shard::GroupMux over a UdpTransport) and
// by the unit fuzz in tests/shard.
inline constexpr std::uint8_t kGroupFrameTag = 0x47;  // 'G'

struct GroupFrame {
  std::uint32_t group = 0;
  Bytes payload;

  friend bool operator==(const GroupFrame&, const GroupFrame&) = default;
};

/// Appends the group frame for (group, payload) to `w` (reused hot-path
/// writer, same discipline as encode_into).
void encode_group_frame(std::uint32_t group, const Bytes& payload, Writer& w);
[[nodiscard]] Bytes encode_group_frame(std::uint32_t group,
                                       const Bytes& payload);
/// True iff `data` starts with the group-frame tag byte.
[[nodiscard]] bool looks_like_group_frame(const Bytes& data);
/// Decodes a group frame; throws DecodeError on anything malformed (wrong
/// tag, truncated varint, missing payload bytes).
[[nodiscard]] GroupFrame decode_group_frame(const Bytes& data);

}  // namespace dvs::vsys
