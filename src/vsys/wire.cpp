#include "vsys/wire.h"

#include <sstream>

namespace dvs::vsys {
namespace {

enum class Tag : std::uint8_t {
  kHeartbeat = 1,
  kPropose = 2,
  kFlushAck = 3,
  kInstall = 4,
  kData = 5,
  kSeq = 6,
  kToken = 7,
};

}  // namespace

Bytes encode(const WireMsg& m) {
  Writer w;
  encode_into(m, w);
  return w.take();
}

void encode_into(const WireMsg& m, Writer& w) {
  if (const auto* hb = std::get_if<Heartbeat>(&m)) {
    w.u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
    w.u64(hb->max_epoch);
    w.u8(hb->view.has_value() ? 1 : 0);
    if (hb->view.has_value()) w.view_id(*hb->view);
    w.u64(hb->delivered);
    w.u64(hb->token_rotation);
    w.varuint(hb->safe);
  } else if (const auto* pr = std::get_if<Propose>(&m)) {
    w.u8(static_cast<std::uint8_t>(Tag::kPropose));
    w.view(pr->view);
  } else if (const auto* fa = std::get_if<FlushAck>(&m)) {
    w.u8(static_cast<std::uint8_t>(Tag::kFlushAck));
    w.view_id(fa->proposed);
  } else if (const auto* in = std::get_if<Install>(&m)) {
    w.u8(static_cast<std::uint8_t>(Tag::kInstall));
    w.view(in->view);
  } else if (const auto* da = std::get_if<Data>(&m)) {
    w.u8(static_cast<std::uint8_t>(Tag::kData));
    w.view_id(da->view);
    w.u64(da->sender_seq);
    w.varuint(da->wm_delivered);
    w.varuint(da->wm_safe);
    w.msg(da->payload);
  } else if (const auto* sq = std::get_if<Seq>(&m)) {
    w.u8(static_cast<std::uint8_t>(Tag::kSeq));
    w.view_id(sq->view);
    w.u64(sq->seqno);
    w.process_id(sq->origin);
    w.varuint(sq->wm_delivered);
    w.varuint(sq->wm_safe);
    w.msg(sq->payload);
  } else {
    const auto& tk = std::get<Token>(m);
    w.u8(static_cast<std::uint8_t>(Tag::kToken));
    w.view_id(tk.view);
    w.u64(tk.rotation);
    w.u64(tk.next_seqno);
  }
}

WireMsg decode(const Bytes& data) {
  Reader r(data);
  WireMsg out = [&]() -> WireMsg {
    switch (static_cast<Tag>(r.u8())) {
      case Tag::kHeartbeat: {
        Heartbeat hb;
        hb.max_epoch = r.u64();
        if (r.u8() != 0) hb.view = r.view_id();
        hb.delivered = r.u64();
        hb.token_rotation = r.u64();
        hb.safe = r.varuint();
        return hb;
      }
      case Tag::kPropose:
        return Propose{r.view()};
      case Tag::kFlushAck:
        return FlushAck{r.view_id()};
      case Tag::kInstall:
        return Install{r.view()};
      case Tag::kData: {
        Data da;
        da.view = r.view_id();
        da.sender_seq = r.u64();
        da.wm_delivered = r.varuint();
        da.wm_safe = r.varuint();
        da.payload = r.msg();
        return da;
      }
      case Tag::kSeq: {
        Seq sq;
        sq.view = r.view_id();
        sq.seqno = r.u64();
        sq.origin = r.process_id();
        sq.wm_delivered = r.varuint();
        sq.wm_safe = r.varuint();
        sq.payload = r.msg();
        return sq;
      }
      case Tag::kToken: {
        Token tk;
        tk.view = r.view_id();
        tk.rotation = r.u64();
        tk.next_seqno = r.u64();
        return tk;
      }
    }
    throw DecodeError("unknown vsys tag");
  }();
  r.expect_exhausted();
  return out;
}

void encode_group_frame(std::uint32_t group, const Bytes& payload, Writer& w) {
  w.u8(kGroupFrameTag);
  w.varuint(group);
  w.raw(payload.data(), payload.size());
}

Bytes encode_group_frame(std::uint32_t group, const Bytes& payload) {
  Writer w;
  w.reserve(payload.size() + 6);
  encode_group_frame(group, payload, w);
  return w.take();
}

bool looks_like_group_frame(const Bytes& data) {
  return !data.empty() &&
         static_cast<std::uint8_t>(data[0]) == kGroupFrameTag;
}

GroupFrame decode_group_frame(const Bytes& data) {
  Reader r(data);
  if (r.u8() != kGroupFrameTag) throw DecodeError("not a group frame");
  const std::uint64_t g = r.varuint();
  if (g > 0xFFFFFFFFull) throw DecodeError("group id out of range");
  GroupFrame f;
  f.group = static_cast<std::uint32_t>(g);
  f.payload.assign(data.end() - static_cast<std::ptrdiff_t>(r.remaining()),
                   data.end());
  return f;
}

std::string to_string(const WireMsg& m) {
  std::ostringstream os;
  if (const auto* hb = std::get_if<Heartbeat>(&m)) {
    os << "heartbeat{epoch=" << hb->max_epoch;
    if (hb->view.has_value()) {
      os << ",view=" << hb->view->to_string() << ",delivered="
         << hb->delivered;
    }
    os << "}";
  } else if (const auto* pr = std::get_if<Propose>(&m)) {
    os << "propose{" << pr->view.to_string() << "}";
  } else if (const auto* fa = std::get_if<FlushAck>(&m)) {
    os << "flush-ack{" << fa->proposed.to_string() << "}";
  } else if (const auto* in = std::get_if<Install>(&m)) {
    os << "install{" << in->view.to_string() << "}";
  } else if (const auto* da = std::get_if<Data>(&m)) {
    os << "data{" << da->view.to_string() << ",#" << da->sender_seq << ","
       << dvs::to_string(da->payload) << "}";
  } else if (const auto* sq = std::get_if<Seq>(&m)) {
    os << "seq{" << sq->view.to_string() << ",#" << sq->seqno << ","
       << sq->origin.to_string() << "," << dvs::to_string(sq->payload) << "}";
  } else {
    const auto& tk = std::get<Token>(m);
    os << "token{" << tk.view.to_string() << ",rot=" << tk.rotation
       << ",next=" << tk.next_seqno << "}";
  }
  return os.str();
}

}  // namespace dvs::vsys
