// Sharded concurrent visited set for the parallel exhaustive checkers.
//
// The set is partitioned into K independently-locked shards keyed by the
// state hash, so BFS workers contend only when two of them touch the same
// shard at the same instant. Membership is by 128-bit hash; in paranoid
// mode each shard also retains the full binary encoding and verifies it on
// every hit, turning a (cosmically unlikely) hash collision into a hard
// error instead of a silently-pruned state.
#pragma once

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/serialize.h"
#include "parallel/state_hash.h"

namespace dvs::parallel {

class ShardedStateSet {
 public:
  explicit ShardedStateSet(std::size_t shards = 64, bool paranoid = false)
      : paranoid_(paranoid), shards_(shards == 0 ? 1 : shards) {}

  /// Inserts the state keyed by `h`; returns true iff it was not already
  /// present. `encoding` is consulted only in paranoid mode, where a hash
  /// hit with a different encoding throws.
  bool insert(const Hash128& h, const Bytes& encoding) {
    Shard& shard = shards_[shard_index(h)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (paranoid_) {
      auto [it, inserted] = shard.full.try_emplace(h, encoding);
      if (!inserted && it->second != encoding) {
        throw std::logic_error(
            "128-bit state-hash collision detected (paranoid check): two "
            "distinct encodings share a key");
      }
      return inserted;
    }
    return shard.keys.insert(h).second;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += paranoid_ ? shard.full.size() : shard.keys.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<Hash128, Hash128Hasher> keys;
    std::unordered_map<Hash128, Bytes, Hash128Hasher> full;  // paranoid mode
  };

  [[nodiscard]] std::size_t shard_index(const Hash128& h) const {
    // hi is independent of the bits unordered_set uses (lo), so shard choice
    // does not correlate with in-shard bucket placement.
    return static_cast<std::size_t>(h.hi) % shards_.size();
  }

  bool paranoid_;
  std::vector<Shard> shards_;
};

}  // namespace dvs::parallel
