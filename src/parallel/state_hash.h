// 128-bit hashing of encoded automaton states.
//
// The exhaustive checkers key their visited sets on a 128-bit hash of the
// compact binary state encoding instead of the encoding itself: at the
// multi-million-state scopes the BFS reaches, storing (and comparing)
// full string keys dominates both memory and time. With 128 bits the
// collision probability across 10^7 states is ~10^-25, far below the rate
// of undetected hardware faults; ExhaustiveConfig::paranoid_collision_check
// retains the full encodings and turns any collision into a hard error.
//
// The function is MurmurHash3's x64 128-bit finalizer pipeline — chosen
// because it is public-domain, allocation-free, and byte-order independent
// given our little-endian encodings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dvs::parallel {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    // The input is already a high-quality hash; fold the halves.
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
  }
};

namespace detail {

inline std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline std::uint64_t load64(const std::byte* p) {
  // Explicit little-endian assembly, matching the tail path below: a raw
  // memcpy would read host order, making the "byte-order independent"
  // promise above false on big-endian targets (the tail bytes and the
  // block bytes of one logical value would combine differently). GCC and
  // Clang fold this to the same single load on little-endian machines.
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= std::uint64_t(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace detail

/// MurmurHash3 x64 128 (public domain, Austin Appleby), fixed seed.
inline Hash128 hash128(const std::byte* data, std::size_t len) {
  using detail::fmix64;
  using detail::load64;
  using detail::rotl64;

  constexpr std::uint64_t c1 = 0x87c37b91114253d5ULL;
  constexpr std::uint64_t c2 = 0x4cf5ad432745937fULL;

  std::uint64_t h1 = 0x5eed5eed5eed5eedULL;
  std::uint64_t h2 = 0x5eed5eed5eed5eedULL;

  const std::size_t nblocks = len / 16;
  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(data + 16 * i);
    std::uint64_t k2 = load64(data + 16 * i + 8);

    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const std::byte* tail = data + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[14])) << 48; [[fallthrough]];
    case 14: k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[13])) << 40; [[fallthrough]];
    case 13: k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[12])) << 32; [[fallthrough]];
    case 12: k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[11])) << 24; [[fallthrough]];
    case 11: k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[10])) << 16; [[fallthrough]];
    case 10: k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[9])) << 8; [[fallthrough]];
    case 9:
      k2 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[8]));
      k2 *= c2;
      k2 = rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[7])) << 56; [[fallthrough]];
    case 7: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[6])) << 48; [[fallthrough]];
    case 6: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[5])) << 40; [[fallthrough]];
    case 5: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[4])) << 32; [[fallthrough]];
    case 4: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[3])) << 24; [[fallthrough]];
    case 3: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[2])) << 16; [[fallthrough]];
    case 2: k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[1])) << 8; [[fallthrough]];
    case 1:
      k1 ^= std::uint64_t(std::to_integer<std::uint8_t>(tail[0]));
      k1 *= c1;
      k1 = rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    default:
      break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

}  // namespace dvs::parallel
