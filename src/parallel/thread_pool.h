// Fixed-size thread pool for the verification engine.
//
// Deliberately simple: one central FIFO task queue, no work stealing. The
// engine's determinism contract (docs/PERFORMANCE.md) never depends on
// which worker runs which task — results are always written to
// caller-indexed slots and aggregated in a fixed order afterwards — so a
// plain queue is enough, and keeps the scheduling easy to reason about
// under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvs::parallel {

/// Number of workers to use for `requested` (0 = one per hardware thread,
/// falling back to 1 when the runtime cannot tell).
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 is resolved via resolve_jobs).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap and capture instead) —
  /// an escaping exception would terminate the worker thread.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dvs::parallel
