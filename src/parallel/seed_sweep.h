// Deterministic multi-threaded seed sweeps over the randomized explorers.
//
// A sweep fans the seeds [first_seed, first_seed + num_seeds) across a
// thread pool, one task per seed. Each seed's exploration is fully
// self-contained (its own automaton copy and Rng), so the only shared
// state is the result table, which is indexed by seed — never by worker —
// and aggregated in seed order after the pool drains. That gives the
// determinism contract the verification harness needs:
//
//   * the aggregated ExplorationStats are byte-identical for any thread
//     count, and identical to a sequential loop over the same seeds;
//   * when one or more seeds fail, the sweep always reports the LOWEST
//     failing seed (with its full failure message), so a counterexample
//     reproduces with `--jobs 1` exactly as it was found with `--jobs N`.
//
// See docs/PERFORMANCE.md for the full contract and measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/types.h"
#include "common/view.h"
#include "explorer/explorer.h"
#include "impl/vs_to_dvs.h"
#include "toimpl/dvs_to_to.h"
#include "tosys/chaos.h"

namespace dvs::parallel {

struct SeedSweepConfig {
  std::uint64_t first_seed = 1;
  std::uint64_t num_seeds = 16;
  /// Worker threads; 0 = hardware_concurrency().
  std::size_t jobs = 0;
};

/// The lowest failing seed of a sweep and its failure account (the
/// ExplorationFailure::what(), which embeds the seed and action tail).
struct SeedFailure {
  std::uint64_t seed = 0;
  std::string message;
};

struct SeedSweepResult {
  /// Field-wise sum of the per-seed stats, accumulated in seed order.
  explorer::ExplorationStats total;
  std::size_t seeds_run = 0;
  std::size_t seeds_failed = 0;
  /// Failure of the lowest failing seed, if any seed failed.
  std::optional<SeedFailure> first_failure;
};

/// Runs one seed to completion and returns its stats; throws
/// explorer::ExplorationFailure (or any exception) to report a failure.
using SeedTask =
    std::function<explorer::ExplorationStats(std::uint64_t seed)>;

class SeedSweep {
 public:
  explicit SeedSweep(SeedSweepConfig config) : config_(config) {}

  /// Fans `task` over the configured seed range. Never throws for seed
  /// failures — they are captured in the result so the sweep always
  /// completes every seed and the lowest failing one is known.
  [[nodiscard]] SeedSweepResult run(const SeedTask& task) const;

  [[nodiscard]] const SeedSweepConfig& config() const { return config_; }

 private:
  SeedSweepConfig config_;
};

// ----- canned tasks for the four randomized explorers -----------------------

[[nodiscard]] SeedTask vs_spec_task(ProcessSet universe, View v0,
                                    explorer::ExplorerConfig config);
[[nodiscard]] SeedTask dvs_spec_task(ProcessSet universe, View v0,
                                     explorer::ExplorerConfig config);
[[nodiscard]] SeedTask dvs_impl_task(ProcessSet universe, View v0,
                                     explorer::ExplorerConfig config,
                                     impl::VsToDvsOptions node_options = {});
[[nodiscard]] SeedTask to_impl_task(ProcessSet universe, View v0,
                                    explorer::ExplorerConfig config,
                                    toimpl::DvsToToOptions node_options = {});

// ----- chaos sweeps ----------------------------------------------------------

/// Result of fanning tosys::run_chaos_seed over a seed range. Same
/// determinism contract as SeedSweepResult: `total` is summed in seed
/// order and `first_failure` is always the LOWEST failing seed, so every
/// field is byte-identical for any thread count.
struct ChaosSweepResult {
  tosys::ChaosStats total;
  std::size_t seeds_run = 0;
  std::size_t seeds_failed = 0;
  std::optional<SeedFailure> first_failure;
};

/// Runs the FaultPlan-driven full-stack chaos executions (tosys/chaos.h)
/// for the seeds in `config`, each with the conformance oracles attached.
/// Never throws for seed failures; the lowest failing seed's ChaosFailure
/// message (seed + replayable plan + trace tail) lands in first_failure.
[[nodiscard]] ChaosSweepResult run_chaos_sweep(
    const SeedSweepConfig& config, const tosys::ChaosConfig& chaos);

}  // namespace dvs::parallel
