#include "parallel/thread_pool.h"

#include <utility>

namespace dvs::parallel {

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_jobs(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace dvs::parallel
