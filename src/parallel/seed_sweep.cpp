#include "parallel/seed_sweep.h"

#include <exception>
#include <utility>
#include <vector>

#include "explorer/to_explorer.h"
#include "parallel/thread_pool.h"

namespace dvs::parallel {
namespace {

struct SeedSlot {
  explorer::ExplorationStats stats;
  bool ok = false;
  std::string error;
};

}  // namespace

SeedSweepResult SeedSweep::run(const SeedTask& task) const {
  const std::size_t n = static_cast<std::size_t>(config_.num_seeds);
  std::vector<SeedSlot> slots(n);

  {
    ThreadPool pool(config_.jobs);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&task, &slot = slots[i],
                   seed = config_.first_seed + i]() noexcept {
        try {
          slot.stats = task(seed);
          slot.ok = true;
        } catch (const std::exception& e) {
          slot.error = e.what();
        } catch (...) {
          slot.error = "unknown exception";
        }
      });
    }
    pool.wait_idle();
  }

  // Aggregate strictly in seed order: the totals and the reported failure
  // are independent of which worker ran which seed.
  SeedSweepResult result;
  for (std::size_t i = 0; i < n; ++i) {
    ++result.seeds_run;
    if (slots[i].ok) {
      result.total += slots[i].stats;
    } else {
      ++result.seeds_failed;
      if (!result.first_failure.has_value()) {
        result.first_failure =
            SeedFailure{config_.first_seed + i, std::move(slots[i].error)};
      }
    }
  }
  return result;
}

ChaosSweepResult run_chaos_sweep(const SeedSweepConfig& config,
                                 const tosys::ChaosConfig& chaos) {
  struct ChaosSlot {
    tosys::ChaosStats stats;
    bool ok = false;
    std::string error;
  };
  const std::size_t n = static_cast<std::size_t>(config.num_seeds);
  std::vector<ChaosSlot> slots(n);

  {
    ThreadPool pool(config.jobs);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&chaos, &slot = slots[i],
                   seed = config.first_seed + i]() noexcept {
        try {
          slot.stats = tosys::run_chaos_seed(seed, chaos);
          slot.ok = true;
        } catch (const std::exception& e) {
          slot.error = e.what();
        } catch (...) {
          slot.error = "unknown exception";
        }
      });
    }
    pool.wait_idle();
  }

  ChaosSweepResult result;
  for (std::size_t i = 0; i < n; ++i) {
    ++result.seeds_run;
    if (slots[i].ok) {
      result.total += slots[i].stats;
    } else {
      ++result.seeds_failed;
      if (!result.first_failure.has_value()) {
        result.first_failure =
            SeedFailure{config.first_seed + i, std::move(slots[i].error)};
      }
    }
  }
  return result;
}

SeedTask vs_spec_task(ProcessSet universe, View v0,
                      explorer::ExplorerConfig config) {
  return [universe = std::move(universe), v0 = std::move(v0),
          config](std::uint64_t seed) {
    explorer::VsSpecExplorer ex(universe, v0, config, seed);
    return ex.run();
  };
}

SeedTask dvs_spec_task(ProcessSet universe, View v0,
                       explorer::ExplorerConfig config) {
  return [universe = std::move(universe), v0 = std::move(v0),
          config](std::uint64_t seed) {
    explorer::DvsSpecExplorer ex(universe, v0, config, seed);
    return ex.run();
  };
}

SeedTask dvs_impl_task(ProcessSet universe, View v0,
                       explorer::ExplorerConfig config,
                       impl::VsToDvsOptions node_options) {
  return [universe = std::move(universe), v0 = std::move(v0), config,
          node_options](std::uint64_t seed) {
    explorer::DvsImplExplorer ex(universe, v0, config, seed, node_options);
    return ex.run();
  };
}

SeedTask to_impl_task(ProcessSet universe, View v0,
                      explorer::ExplorerConfig config,
                      toimpl::DvsToToOptions node_options) {
  return [universe = std::move(universe), v0 = std::move(v0), config,
          node_options](std::uint64_t seed) {
    explorer::ToImplExplorer ex(universe, v0, config, seed, node_options);
    return ex.run();
  };
}

}  // namespace dvs::parallel
