#include "tosys/chaos.h"

#include <vector>

#include "common/rng.h"
#include "obs/stack_tracer.h"
#include "tosys/cluster.h"

namespace dvs::tosys {

ChaosStats& operator+=(ChaosStats& a, const ChaosStats& b) {
  a.events_checked += b.events_checked;
  a.invariant_checks += b.invariant_checks;
  a.views_installed += b.views_installed;
  a.broadcasts += b.broadcasts;
  a.deliveries += b.deliveries;
  a.fault_events += b.fault_events;
  a.net_sent += b.net_sent;
  a.net_delivered += b.net_delivered;
  a.duplicated += b.duplicated;
  a.reordered += b.reordered;
  a.truncated += b.truncated;
  a.decode_errors += b.decode_errors;
  a.duplicates_suppressed += b.duplicates_suppressed;
  a.datagrams += b.datagrams;
  a.batches += b.batches;
  a.batched_msgs += b.batched_msgs;
  a.restarts += b.restarts;
  a.wal_appends += b.wal_appends;
  a.wal_bytes += b.wal_bytes;
  a.metrics += b.metrics;
  return a;
}

namespace {

std::string failure_message(std::uint64_t seed, const ChaosConfig& config,
                            const net::FaultPlan& plan,
                            const spec::TraceRecorder& oracle) {
  std::string out = "chaos seed " + std::to_string(seed) +
                    " (n=" + std::to_string(config.n_processes) +
                    "): " + oracle.violation()->to_string();
  out += "\nfault plan (replay with net::FaultPlan::parse):\n";
  out += plan.to_string();
  const std::string tail = oracle.tail();
  if (!tail.empty()) out += "trace tail:\n" + tail;
  return out;
}

}  // namespace

ChaosStats run_chaos_seed(std::uint64_t seed, const ChaosConfig& config) {
  ClusterConfig cc;
  cc.n_processes = config.n_processes;
  cc.initial_members = config.initial_members;
  cc.net.drop_probability = config.drop_probability;
  cc.net.duplicate_probability = config.duplicate_probability;
  cc.net.max_duplicates = config.max_duplicates;
  cc.net.reorder_probability = config.reorder_probability;
  cc.net.reorder_window = config.reorder_window;
  cc.net.truncate_probability = config.truncate_probability;
  cc.net.batching = config.batching;
  cc.net.payload_arena = config.payload_arena;
  cc.vs.stability = config.watermarks ? vsys::StabilityMode::kWatermark
                                      : vsys::StabilityMode::kExplicitAck;
  cc.record_traces = true;
  cc.conformance_oracle = true;
  cc.to_options = config.to_options;
  // Restart adversaries need somewhere to recover from.
  cc.persistence = config.persistence || config.crashes_restart ||
                   config.plan.w_restart > 0;
  Cluster cluster(cc, seed);

  const net::FaultPlan plan =
      net::FaultPlan::random(seed, cluster.universe(), config.plan);
  net::FaultPlan::ScheduleHooks hooks;
  hooks.crashes_restart = config.crashes_restart;
  if (cc.persistence) {
    hooks.restart = [&cluster](ProcessId p) { cluster.restart(p); };
  }
  plan.schedule(cluster.sim(), cluster.net(), hooks);

  // Client load at seeded times across the horizon, decorrelated from both
  // the cluster's network rng and the plan generator so the three sources
  // of randomness never lock step.
  Rng load(seed ^ 0xb0adca5700150adULL);
  const std::vector<ProcessId> procs(cluster.universe().begin(),
                                     cluster.universe().end());
  std::uint64_t uid = 1;
  for (std::size_t i = 0; i < config.broadcasts; ++i) {
    const auto at = static_cast<sim::Time>(
        1 + load.below(static_cast<std::size_t>(config.plan.horizon)));
    const ProcessId p = procs[load.below(procs.size())];
    cluster.sim().schedule_at(at, [&cluster, p, m = AppMsg{uid++, p, "x"}] {
      cluster.bcast(p, m);
    });
  }

  // Mid-run Invariant 4.1/4.2 checks against the oracle's resolved DVS
  // state — a transiently bad state between events is caught even if the
  // event stream itself stays acceptable.
  if (config.invariant_check_period > 0) {
    for (sim::Time t = config.invariant_check_period; t < config.plan.horizon;
         t += config.invariant_check_period) {
      cluster.sim().schedule_at(
          t, [&cluster] { (void)cluster.oracle().check_invariants(); });
    }
  }

  cluster.start();
  cluster.run_for(config.plan.horizon);

  // Recovery phase: full connectivity back, everyone resumed, and time to
  // converge — the oracle watches the repair traffic too.
  cluster.net().heal();
  for (ProcessId p : cluster.universe()) cluster.net().resume(p);
  cluster.run_for(config.settle);
  (void)cluster.oracle().check_invariants();

  if (!cluster.oracle().ok()) {
    throw ChaosFailure(seed,
                       failure_message(seed, config, plan, cluster.oracle()));
  }

  ChaosStats s;
  s.events_checked = cluster.oracle().events_checked();
  s.invariant_checks = cluster.oracle().invariant_checks();
  s.broadcasts = config.broadcasts;
  s.deliveries = cluster.deliveries().size();
  s.fault_events = plan.events.size();
  for (ProcessId p : cluster.universe()) {
    const auto& vstats = cluster.vs_node(p).stats();
    s.views_installed += vstats.views_installed;
    s.decode_errors += vstats.decode_errors;
    s.duplicates_suppressed += vstats.duplicates_suppressed;
  }
  const net::NetStats& ns = cluster.net().stats();
  s.net_sent = ns.sent;
  s.net_delivered = ns.delivered;
  s.duplicated = ns.duplicated;
  s.reordered = ns.reordered;
  s.truncated = ns.truncated;
  s.datagrams = ns.datagrams;
  s.batches = ns.batches;
  s.batched_msgs = ns.batched_msgs;
  s.restarts = cluster.restarts();
  if (cluster.store() != nullptr) {
    const storage::StorageStats& ss = cluster.store()->stats();
    s.wal_appends = ss.appends;
    s.wal_bytes = ss.bytes_written();
  }
  // End-of-run span-invariant check travels inside the snapshot (all-zero
  // on a conforming run) alongside every layer's counters and the tracer's
  // latency histograms.
  obs::publish_span_invariants(obs::check_span_invariants(cluster.trace()),
                               cluster.metrics());
  s.metrics = cluster.metrics_snapshot();
  return s;
}

}  // namespace dvs::tosys
