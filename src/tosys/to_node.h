// Distributed totally-ordered-broadcast node: the Figure 5 DVS-TO-TO
// automaton driven over the distributed DVS layer.
//
// As with dvsys::DvsNode, the protocol logic is the verified
// toimpl::DvsToTo automaton; this wrapper wires inputs to DVS callbacks and
// fires the enabled outputs/internal actions eagerly.
#pragma once

#include <cstdint>
#include <functional>

#include "common/labels.h"
#include "dvsys/dvs_node.h"
#include "toimpl/dvs_to_to.h"

namespace dvs::tosys {

struct ToCallbacks {
  /// BRCV(a)_{origin, self}: a is delivered in the global total order.
  std::function<void(const AppMsg&, ProcessId origin)> on_brcv;
};

struct ToNodeOptions {
  /// Issue DVS-REGISTER automatically once a view is established (the
  /// normal mode). Disabling it is an ablation: views never become totally
  /// registered, so the dynamic service can never garbage-collect and loses
  /// its adaptivity (see bench_ablation).
  bool auto_register = true;
  /// Behaviour switches of the underlying Figure 5 automaton (e.g.
  /// printed_figure_mode for mutation testing).
  toimpl::DvsToToOptions automaton;
};

struct ToNodeStats {
  std::uint64_t bcasts = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t views_established = 0;
};

class ToNode {
 public:
  ToNode(ProcessId self, const View& v0, dvsys::DvsNode& dvs,
         ToCallbacks callbacks, ToNodeOptions options = {});

  /// Replaces the callbacks; must be called before any traffic flows.
  void set_callbacks(ToCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Client broadcast (BCAST).
  void bcast(const AppMsg& a);

  /// The DVS callbacks to install on the underlying dvsys::DvsNode.
  [[nodiscard]] dvsys::DvsCallbacks dvs_callbacks();

  [[nodiscard]] ProcessId self() const { return automaton_.self(); }
  [[nodiscard]] const toimpl::DvsToTo& automaton() const { return automaton_; }
  [[nodiscard]] const ToNodeStats& stats() const { return stats_; }

  /// Registers a collector that publishes ToNodeStats as to.*{process="pN"}
  /// counters. The node must outlive the registry's last collect().
  void bind_metrics(obs::MetricsRegistry& metrics);

 private:
  void drain();

  toimpl::DvsToTo automaton_;
  dvsys::DvsNode& dvs_;
  ToCallbacks callbacks_;
  ToNodeOptions options_;
  ToNodeStats stats_;
  std::set<ViewId> counted_established_;
};

}  // namespace dvs::tosys
