// Distributed totally-ordered-broadcast node: the Figure 5 DVS-TO-TO
// automaton driven over the distributed DVS layer.
//
// As with dvsys::DvsNode, the protocol logic is the verified
// toimpl::DvsToTo automaton; this wrapper wires inputs to DVS callbacks and
// fires the enabled outputs/internal actions eagerly.
#pragma once

#include <cstdint>
#include <functional>

#include "common/labels.h"
#include "dvsys/dvs_node.h"
#include "storage/wal.h"
#include "toimpl/dvs_to_to.h"

namespace dvs::tosys {

struct ToCallbacks {
  /// BRCV(a)_{origin, self}: a is delivered in the global total order.
  std::function<void(const AppMsg&, ProcessId origin)> on_brcv;
};

struct ToNodeOptions {
  /// Issue DVS-REGISTER automatically once a view is established (the
  /// normal mode). Disabling it is an ablation: views never become totally
  /// registered, so the dynamic service can never garbage-collect and loses
  /// its adaptivity (see bench_ablation).
  bool auto_register = true;
  /// Behaviour switches of the underlying Figure 5 automaton (e.g.
  /// printed_figure_mode for mutation testing).
  toimpl::DvsToToOptions automaton;
};

struct ToNodeStats {
  std::uint64_t bcasts = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t views_established = 0;
};

class ToNode {
 public:
  ToNode(ProcessId self, const View& v0, dvsys::DvsNode& dvs,
         ToCallbacks callbacks, ToNodeOptions options = {});

  /// Replaces the callbacks; must be called before any traffic flows.
  void set_callbacks(ToCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Client broadcast (BCAST).
  void bcast(const AppMsg& a);

  /// The DVS callbacks to install on the underlying dvsys::DvsNode.
  [[nodiscard]] dvsys::DvsCallbacks dvs_callbacks();

  [[nodiscard]] ProcessId self() const { return automaton_.self(); }
  [[nodiscard]] const toimpl::DvsToTo& automaton() const { return automaton_; }
  [[nodiscard]] const ToNodeStats& stats() const { return stats_; }

  /// Registers a collector that publishes ToNodeStats as to.*{process="pN"}
  /// counters. Returns the collector id so an owner that rebuilds the node
  /// (crash-restart) can remove the stale collector.
  std::size_t bind_metrics(obs::MetricsRegistry& metrics);

  // ----- durability (crash-restart recovery) -------------------------------

  /// Starts journaling the automaton's durable transitions (content
  /// inserts, order appends, establishments, confirm/report advances — see
  /// toimpl::ToDurableState) into `store` at `key`, writing the current
  /// durable state as the baseline snapshot. Call before any traffic (and
  /// after restore()).
  void attach_storage(storage::StableStore& store, const std::string& key);

  /// Reinstates recovered durable state after a crash-restart; forwards to
  /// toimpl::DvsToTo::restore. Call before any traffic.
  void restore(const toimpl::ToDurableState& recovered) {
    automaton_.restore(recovered);
  }

  /// Replays the journal at `key`. An empty/absent log yields a fresh
  /// state; corrupt tails are discarded (replay is idempotent, so a clean
  /// prefix is always a valid — possibly older — durable state).
  [[nodiscard]] static toimpl::ToDurableState recover(
      const storage::StableStore& store, const std::string& key);

 private:
  void drain();
  /// Writes one WAL snapshot record of the current durable state (also the
  /// compaction step — snapshots replace the whole log).
  void snapshot_state();

  toimpl::DvsToTo automaton_;
  dvsys::DvsNode& dvs_;
  ToCallbacks callbacks_;
  ToNodeOptions options_;
  ToNodeStats stats_;
  std::set<ViewId> counted_established_;
  std::optional<storage::Wal> wal_;  // durable-state journal, when attached
};

}  // namespace dvs::tosys
