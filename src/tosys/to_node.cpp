#include "tosys/to_node.h"

namespace dvs::tosys {

ToNode::ToNode(ProcessId self, const View& v0, dvsys::DvsNode& dvs,
               ToCallbacks callbacks, ToNodeOptions options)
    : automaton_(self, v0, options.automaton),
      dvs_(dvs),
      callbacks_(std::move(callbacks)),
      options_(options) {}

void ToNode::bcast(const AppMsg& a) {
  automaton_.on_bcast(a);
  ++stats_.bcasts;
  drain();
}

dvsys::DvsCallbacks ToNode::dvs_callbacks() {
  dvsys::DvsCallbacks cb;
  cb.on_newview = [this](const View& v) {
    automaton_.on_dvs_newview(v);
    drain();
  };
  cb.on_gprcv = [this](const ClientMsg& m, ProcessId from) {
    automaton_.on_dvs_gprcv(m, from);
    drain();
  };
  cb.on_safe = [this](const ClientMsg& m, ProcessId from) {
    automaton_.on_dvs_safe(m, from);
    drain();
  };
  return cb;
}

void ToNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self().to_string() + "\"}";
  metrics.add_collector([this, &metrics, label] {
    metrics.counter("to.bcasts" + label).set(stats_.bcasts);
    metrics.counter("to.deliveries" + label).set(stats_.deliveries);
    metrics.counter("to.views_established" + label)
        .set(stats_.views_established);
  });
}

void ToNode::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    while (automaton_.can_label()) {
      automaton_.apply_label();
      progressed = true;
    }
    while (auto m = automaton_.poll_gpsnd()) {
      dvs_.gpsnd(*m);
      progressed = true;
    }
    if (options_.auto_register && automaton_.can_register()) {
      automaton_.apply_register();
      dvs_.register_view();
      progressed = true;
    }
    while (automaton_.can_confirm()) {
      automaton_.apply_confirm();
      progressed = true;
    }
    while (auto r = automaton_.poll_brcv()) {
      ++stats_.deliveries;
      if (callbacks_.on_brcv) callbacks_.on_brcv(r->first, r->second);
      progressed = true;
    }
    if (automaton_.current().has_value() &&
        automaton_.established(automaton_.current()->id()) &&
        counted_established_.insert(automaton_.current()->id()).second) {
      ++stats_.views_established;
    }
  }
}

}  // namespace dvs::tosys
