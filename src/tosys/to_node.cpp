#include "tosys/to_node.h"

#include <algorithm>

namespace dvs::tosys {

namespace {

// TO journal record types. Replay is idempotent: content/order records
// re-apply harmlessly against a snapshot that already contains them
// (map-emplace / establishment-reset), confirm/report records max-merge.
constexpr std::uint8_t kToSnapshot = 1;   // full ToDurableState
constexpr std::uint8_t kToContent = 2;    // content ∪= {⟨label, msg⟩}
constexpr std::uint8_t kToOrder = 3;      // order := order + label
constexpr std::uint8_t kToEstablish = 4;  // order/nextconfirm/highprimary :=
constexpr std::uint8_t kToConfirm = 5;    // nextconfirm := max(·, value)
constexpr std::uint8_t kToReport = 6;     // nextreport := max(·, value)
constexpr std::size_t kToCompactEvery = 64;

void encode_snapshot(Writer& w, const toimpl::ToDurableState& s) {
  w.varuint(s.content.size());
  for (const auto& [l, a] : s.content) {
    w.label(l);
    w.app_msg(a);
  }
  w.varuint(s.order.size());
  for (const Label& l : s.order) w.label(l);
  w.varuint(s.nextconfirm);
  w.varuint(s.nextreport);
  w.view_id(s.highprimary);
}

toimpl::ToDurableState decode_snapshot(Reader& r) {
  toimpl::ToDurableState s;
  for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
    Label l = r.label();
    s.content.emplace(l, r.app_msg());
  }
  for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
    s.order.push_back(r.label());
  }
  s.nextconfirm = r.varuint();
  s.nextreport = r.varuint();
  s.highprimary = r.view_id();
  return s;
}

}  // namespace

ToNode::ToNode(ProcessId self, const View& v0, dvsys::DvsNode& dvs,
               ToCallbacks callbacks, ToNodeOptions options)
    : automaton_(self, v0, options.automaton),
      dvs_(dvs),
      callbacks_(std::move(callbacks)),
      options_(options) {}

void ToNode::bcast(const AppMsg& a) {
  automaton_.on_bcast(a);
  ++stats_.bcasts;
  drain();
}

dvsys::DvsCallbacks ToNode::dvs_callbacks() {
  dvsys::DvsCallbacks cb;
  cb.on_newview = [this](const View& v) {
    automaton_.on_dvs_newview(v);
    drain();
  };
  cb.on_gprcv = [this](const ClientMsg& m, ProcessId from) {
    automaton_.on_dvs_gprcv(m, from);
    drain();
  };
  cb.on_safe = [this](const ClientMsg& m, ProcessId from) {
    automaton_.on_dvs_safe(m, from);
    drain();
  };
  return cb;
}

void ToNode::snapshot_state() {
  const toimpl::ToDurableState s = automaton_.durable_state();
  wal_->snapshot(kToSnapshot, [&](Writer& w) { encode_snapshot(w, s); });
}

void ToNode::attach_storage(storage::StableStore& store,
                            const std::string& key) {
  wal_.emplace(store, key);
  snapshot_state();
  toimpl::ToDurabilityHooks hooks;
  auto maybe_compact = [this] {
    if (wal_->records_since_snapshot() >= kToCompactEvery) snapshot_state();
  };
  hooks.on_content = [this, maybe_compact](const Label& l, const AppMsg& a) {
    wal_->append(kToContent, [&](Writer& w) {
      w.label(l);
      w.app_msg(a);
    });
    maybe_compact();
  };
  hooks.on_order_append = [this, maybe_compact](const Label& l) {
    wal_->append(kToOrder, [&](Writer& w) { w.label(l); });
    maybe_compact();
  };
  hooks.on_establish = [this, maybe_compact](const std::vector<Label>& order,
                                             std::uint64_t nextconfirm,
                                             const ViewId& highprimary) {
    wal_->append(kToEstablish, [&](Writer& w) {
      w.varuint(order.size());
      for (const Label& l : order) w.label(l);
      w.varuint(nextconfirm);
      w.view_id(highprimary);
    });
    maybe_compact();
  };
  hooks.on_confirm = [this, maybe_compact](std::uint64_t nextconfirm) {
    wal_->append(kToConfirm, [&](Writer& w) { w.varuint(nextconfirm); });
    maybe_compact();
  };
  hooks.on_report = [this, maybe_compact](std::uint64_t nextreport) {
    wal_->append(kToReport, [&](Writer& w) { w.varuint(nextreport); });
    maybe_compact();
  };
  automaton_.set_durability_hooks(std::move(hooks));
}

toimpl::ToDurableState ToNode::recover(const storage::StableStore& store,
                                       const std::string& key) {
  toimpl::ToDurableState s;
  for (const storage::WalRecord& rec : storage::read_wal(store, key).records) {
    try {
      Reader r(rec.payload);
      switch (rec.type) {
        case kToSnapshot:
          s = decode_snapshot(r);
          break;
        case kToContent: {
          Label l = r.label();
          s.content.emplace(l, r.app_msg());
          break;
        }
        case kToOrder: {
          // Adjacent-duplicate suppression keeps replay idempotent when an
          // append is doubled (the automaton never appends the same label
          // twice in a row, so a repeat can only be a duplicated record).
          Label l = r.label();
          if (s.order.empty() || s.order.back() != l) s.order.push_back(l);
          break;
        }
        case kToEstablish: {
          std::vector<Label> order;
          for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
            order.push_back(r.label());
          }
          s.order = std::move(order);
          s.nextconfirm = std::max(s.nextconfirm, r.varuint());
          s.highprimary = r.view_id();
          break;
        }
        case kToConfirm:
          s.nextconfirm = std::max(s.nextconfirm, r.varuint());
          break;
        case kToReport:
          s.nextreport = std::max(s.nextreport, r.varuint());
          break;
        default:
          break;  // unknown record type: ignore (forward compatibility)
      }
    } catch (const DecodeError&) {
      break;  // undecodable payload ends the usable prefix
    }
  }
  return s;
}

std::size_t ToNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self().to_string() + "\"}";
  return metrics.add_collector([this, &metrics, label] {
    metrics.counter("to.bcasts" + label).set(stats_.bcasts);
    metrics.counter("to.deliveries" + label).set(stats_.deliveries);
    metrics.counter("to.views_established" + label)
        .set(stats_.views_established);
  });
}

void ToNode::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    while (automaton_.can_label()) {
      automaton_.apply_label();
      progressed = true;
    }
    while (auto m = automaton_.poll_gpsnd()) {
      dvs_.gpsnd(*m);
      progressed = true;
    }
    if (options_.auto_register && automaton_.can_register()) {
      automaton_.apply_register();
      dvs_.register_view();
      progressed = true;
    }
    while (automaton_.can_confirm()) {
      automaton_.apply_confirm();
      progressed = true;
    }
    while (auto r = automaton_.poll_brcv()) {
      ++stats_.deliveries;
      if (callbacks_.on_brcv) callbacks_.on_brcv(r->first, r->second);
      progressed = true;
    }
    if (automaton_.current().has_value() &&
        automaton_.established(automaton_.current()->id()) &&
        counted_established_.insert(automaton_.current()->id()).second) {
      ++stats_.views_established;
    }
  }
}

}  // namespace dvs::tosys
