#include "tosys/cluster.h"

#include <stdexcept>

namespace dvs::tosys {

Cluster::Cluster(ClusterConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      universe_(make_universe(config.n_processes)),
      v0_{ViewId::initial(),
          make_universe(config.initial_members == 0 ? config.n_processes
                                                    : config.initial_members)},
      owned_sim_(config.sim == nullptr ? std::make_unique<sim::Simulator>()
                                       : nullptr),
      sim_(config.sim != nullptr ? *config.sim : *owned_sim_),
      recorder_(universe_, v0_,
                spec::TraceRecorderOptions{
                    .keep_traces = config.record_traces,
                    .check_online = config.conformance_oracle}) {
  if (config_.transport != nullptr) {
    if (config_.sim == nullptr) {
      throw std::logic_error(
          "Cluster: an injected transport requires an injected simulator");
    }
    transport_ = config_.transport;
  } else {
    net_ =
        std::make_unique<net::SimNetwork>(sim_, rng_, config_.net, universe_);
    transport_ = net_.get();
  }
  if (config_.persistence) {
    if (config_.store == nullptr) {
      owned_store_ = std::make_unique<storage::MemStableStore>();
    }
    store_ = config_.store != nullptr ? config_.store : owned_store_.get();
  }

  for (ProcessId p : universe_) {
    const bool member = v0_.contains(p);
    // Build bottom-up; callbacks are wired after all layers exist.
    vs_[p] = std::make_unique<vsys::VsNode>(
        p, member ? std::optional<View>{v0_} : std::nullopt, *transport_,
        sim_, config_.vs, vsys::VsCallbacks{});
    dvs_[p] = std::make_unique<dvsys::DvsNode>(
        p, v0_, *vs_[p], dvsys::DvsCallbacks{},
        dvsys::DvsNodeOptions{.auto_gc = config_.gc_enabled,
                              .weights = config_.weights});
    to_[p] = std::make_unique<ToNode>(
        p, v0_, *dvs_[p], ToCallbacks{},
        ToNodeOptions{.auto_register = config_.registration_enabled,
                      .automaton = config_.to_options});
  }
  // Observability: one registry for every layer's counters plus the causal
  // span tracer, driven from the same callback wrappers as the oracle.
  if (config_.observability) {
    tracer_ = std::make_unique<obs::StackTracer>(metrics_, trace_);
    // An injected transport belongs to the host, which binds its metrics
    // once at pool level (per-column net.* counters would double-count).
    if (net_ != nullptr) net_->bind_metrics(metrics_);
    for (ProcessId p : universe_) bind_process_metrics(p);
    if (store_ != nullptr) {
      // Cluster-wide persistence counters; this collector references the
      // store and the cluster, never a node, so it survives restarts.
      metrics_.add_collector([this] {
        const storage::StorageStats& s = store_->stats();
        metrics_.counter("storage.appends").set(s.appends);
        metrics_.counter("storage.bytes_appended").set(s.bytes_appended);
        metrics_.counter("storage.replaces").set(s.replaces);
        metrics_.counter("storage.bytes_replaced").set(s.bytes_replaced);
        metrics_.counter("storage.loads").set(s.loads);
        metrics_.counter("storage.bytes_written").set(s.bytes_written());
        metrics_.counter("storage.restarts").set(restarts_);
      });
    }
  }
  for (ProcessId p : universe_) wire_process(p);
  if (store_ != nullptr) {
    for (ProcessId p : universe_) attach_process_storage(p);
  }
}

std::string Cluster::storage_key(ProcessId p, const char* layer) {
  return p.to_string() + "/" + layer;
}

void Cluster::attach_process_storage(ProcessId p) {
  vs_.at(p)->attach_storage(*store_, storage_key(p, "vs"));
  dvs_.at(p)->attach_storage(*store_, storage_key(p, "dvs"));
  to_.at(p)->attach_storage(*store_, storage_key(p, "to"));
}

void Cluster::bind_process_metrics(ProcessId p) {
  auto& ids = collector_ids_[p];
  ids.push_back(vs_.at(p)->bind_metrics(metrics_));
  ids.push_back(dvs_.at(p)->bind_metrics(metrics_));
  ids.push_back(to_.at(p)->bind_metrics(metrics_));
}

void Cluster::wire_process(ProcessId p) {
  // Every layer's external actions are observed; the recorder stores the
  // traces and/or feeds the spec acceptors online (the conformance oracle),
  // and the span tracer turns the same actions into latency spans, per
  // their options.
  const bool observe = config_.record_traces || config_.conformance_oracle;
  {
    dvsys::DvsNode* dvs_node = dvs_.at(p).get();
    ToNode* to_node = to_.at(p).get();

    // TO layer on top of DVS.
    ToCallbacks to_cb;
    to_cb.on_brcv = [this, p, observe](const AppMsg& a, ProcessId origin) {
      const Delivery d{p, origin, a, sim_.now()};
      deliveries_.push_back(d);
      if (observe) {
        recorder_.record(spec::ToEvent{spec::EvBrcv{origin, p, a}});
      }
      if (tracer_) tracer_->on_brcv(p, origin, a.uid, sim_.now());
      if (delivery_hook_) delivery_hook_(d);
    };
    to_node->set_callbacks(std::move(to_cb));

    // DVS layer on top of VS, forwarding into the TO automaton.
    dvsys::DvsCallbacks dvs_cb = to_node->dvs_callbacks();
    if (observe || tracer_) {
      auto fwd_newview = std::move(dvs_cb.on_newview);
      dvs_cb.on_newview = [this, p, observe, fwd_newview](const View& v) {
        if (observe) recorder_.record(spec::DvsEvent{spec::EvNewview{p, v}});
        if (tracer_) tracer_->on_dvs_newview(p, v, sim_.now());
        if (fwd_newview) fwd_newview(v);
      };
      dvs_cb.on_register = [this, p, observe, dvs_node] {
        if (observe) recorder_.record(spec::DvsEvent{spec::EvRegister{p}});
        // on_register fires before the automaton consumes the event, so
        // client-cur still names the view being registered.
        if (tracer_ && dvs_node->primary_view().has_value()) {
          tracer_->on_register(p, *dvs_node->primary_view(), sim_.now());
        }
      };
    }
    if (observe) {
      auto fwd_gprcv = std::move(dvs_cb.on_gprcv);
      dvs_cb.on_gprcv = [this, p, fwd_gprcv](const ClientMsg& m,
                                             ProcessId from) {
        recorder_.record(spec::DvsEvent{spec::EvGprcv<ClientMsg>{from, p, m}});
        if (fwd_gprcv) fwd_gprcv(m, from);
      };
      auto fwd_safe = std::move(dvs_cb.on_safe);
      dvs_cb.on_safe = [this, p, fwd_safe](const ClientMsg& m,
                                           ProcessId from) {
        recorder_.record(spec::DvsEvent{spec::EvSafe<ClientMsg>{from, p, m}});
        if (fwd_safe) fwd_safe(m, from);
      };
      dvs_cb.on_gpsnd = [this, p](const ClientMsg& m) {
        recorder_.record(spec::DvsEvent{spec::EvGpsnd<ClientMsg>{p, m}});
      };
    }
    dvs_node->set_callbacks(std::move(dvs_cb));

    // VS layer, forwarding into the DVS automaton.
    vsys::VsCallbacks vs_cb = dvs_node->vs_callbacks();
    if (observe || tracer_) {
      auto fwd_newview = std::move(vs_cb.on_newview);
      vs_cb.on_newview = [this, p, observe, fwd_newview](const View& v) {
        if (observe) recorder_.record(spec::VsEvent{spec::EvNewview{p, v}});
        if (tracer_) tracer_->on_vs_newview(p, v, sim_.now());
        if (fwd_newview) fwd_newview(v);
      };
    }
    if (observe) {
      auto fwd_gprcv = std::move(vs_cb.on_gprcv);
      vs_cb.on_gprcv = [this, p, fwd_gprcv](const Msg& m, ProcessId from) {
        recorder_.record(spec::VsEvent{spec::EvGprcv<Msg>{from, p, m}});
        if (fwd_gprcv) fwd_gprcv(m, from);
      };
      auto fwd_safe = std::move(vs_cb.on_safe);
      vs_cb.on_safe = [this, p, fwd_safe](const Msg& m, ProcessId from) {
        recorder_.record(spec::VsEvent{spec::EvSafe<Msg>{from, p, m}});
        if (fwd_safe) fwd_safe(m, from);
      };
      vs_cb.on_gpsnd = [this, p](const Msg& m) {
        recorder_.record(spec::VsEvent{spec::EvGpsnd<Msg>{p, m}});
      };
    }
    vs_.at(p)->set_callbacks(std::move(vs_cb));
  }
}

void Cluster::start() {
  // Members of v0 begin inside an active view without any DVS-NEWVIEW
  // event; open their initial view_active spans.
  if (tracer_) tracer_->on_start(v0_, sim_.now());
  for (ProcessId p : universe_) vs_.at(p)->start();
}

void Cluster::restart(ProcessId p) {
  if (store_ == nullptr) {
    throw std::logic_error("Cluster::restart requires persistence");
  }
  ++restarts_;
  if (tracer_) tracer_->on_restart(p, sim_.now());
  // Tell the TO oracle: broadcasts p accepted but had not yet ordered lose
  // their FIFO position — the crash may drop them, or a surviving replica
  // may order them late (spec::EvCrash).
  recorder_.record(spec::ToEvent{spec::EvCrash{p}});
  // The stale collectors hold raw pointers into the dying incarnation.
  for (std::size_t id : collector_ids_[p]) metrics_.remove_collector(id);
  collector_ids_[p].clear();
  // Tear down top-down (TO references DVS references VS). The old ticker's
  // in-flight events no-op (PeriodicTimer liveness flag); in-flight
  // datagrams resolve the handler at delivery time, so they arrive at the
  // new incarnation — where the epoch floor makes stale view traffic
  // harmless.
  to_.erase(p);
  dvs_.erase(p);
  vs_.erase(p);
  // Recover the durable state from stable storage...
  const std::uint64_t epoch =
      vsys::VsNode::recover_epoch(*store_, storage_key(p, "vs"));
  const impl::DvsDurableState dvs_state =
      dvsys::DvsNode::recover(*store_, storage_key(p, "dvs"), p, v0_);
  const toimpl::ToDurableState to_state =
      ToNode::recover(*store_, storage_key(p, "to"));
  // ...and rebuild bottom-up. The new incarnation has no view (it rejoins
  // through the membership protocol) but remembers everything it persisted.
  vs_[p] = std::make_unique<vsys::VsNode>(p, std::nullopt, *transport_, sim_,
                                          config_.vs, vsys::VsCallbacks{});
  vs_.at(p)->restore_epoch(epoch);
  dvs_[p] = std::make_unique<dvsys::DvsNode>(
      p, v0_, *vs_[p], dvsys::DvsCallbacks{},
      dvsys::DvsNodeOptions{.auto_gc = config_.gc_enabled,
                            .weights = config_.weights});
  dvs_.at(p)->restore(dvs_state);
  to_[p] = std::make_unique<ToNode>(
      p, v0_, *dvs_[p], ToCallbacks{},
      ToNodeOptions{.auto_register = config_.registration_enabled,
                    .automaton = config_.to_options});
  to_.at(p)->restore(to_state);
  wire_process(p);
  // Re-attach the journals: the baseline snapshots double as compaction of
  // whatever the previous incarnation left behind.
  attach_process_storage(p);
  if (config_.observability) bind_process_metrics(p);
  vs_.at(p)->start();  // re-attaches the net handler, arms a fresh ticker
}

void Cluster::record_handoff(ProcessId p, std::uint64_t next) {
  recorder_.record(spec::ToEvent{spec::EvHandoff{p, next}});
}

void Cluster::bcast(ProcessId p, AppMsg a) {
  if (config_.record_traces || config_.conformance_oracle) {
    recorder_.record(spec::ToEvent{spec::EvBcast{p, a}});
  }
  if (tracer_) tracer_->on_bcast(p, a.uid, sim_.now());
  to_.at(p)->bcast(a);
}

void Cluster::run_for(sim::Time duration) {
  sim_.run_until(sim_.now() + duration);
}

std::vector<Delivery> Cluster::deliveries_at(ProcessId p) const {
  std::vector<Delivery> out;
  for (const Delivery& d : deliveries_) {
    if (d.receiver == p) out.push_back(d);
  }
  return out;
}

spec::AcceptResult Cluster::check_vs_trace() const {
  spec::VsAcceptor acceptor(universe_, v0_);
  return acceptor.feed_all(recorder_.vs_trace());
}

spec::AcceptResult Cluster::check_dvs_trace() const {
  spec::DvsAcceptor acceptor(universe_, v0_);
  return acceptor.feed_all(recorder_.dvs_trace());
}

spec::AcceptResult Cluster::check_to_trace() const {
  spec::ToAcceptor acceptor(universe_);
  return acceptor.feed_all(recorder_.to_trace());
}

net::SimNetwork& Cluster::net() {
  if (net_ == nullptr) {
    throw std::logic_error(
        "Cluster::net: cluster runs on an injected transport");
  }
  return *net_;
}

double Cluster::primary_fraction() const {
  std::size_t in_primary = 0;
  for (const auto& [p, node] : dvs_) {
    const bool paused = net_ != nullptr ? net_->paused(p)
                        : config_.paused_probe ? config_.paused_probe(p)
                                               : false;
    if (node->in_primary() && !paused) ++in_primary;
  }
  return static_cast<double>(in_primary) /
         static_cast<double>(universe_.size());
}

}  // namespace dvs::tosys
