// Cluster: assembles the full distributed stack for one simulated run —
// simulator + partitionable network + per-process VS / DVS / TO nodes —
// and records the external traces of every layer so tests can replay them
// through the specification acceptors (experiment E8 of DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/labels.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/view.h"
#include "dvsys/dvs_node.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/stack_tracer.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "spec/acceptors.h"
#include "spec/events.h"
#include "spec/trace_recorder.h"
#include "storage/stable_store.h"
#include "tosys/to_node.h"
#include "vsys/vs_node.h"

namespace dvs::tosys {

struct ClusterConfig {
  std::size_t n_processes = 3;
  /// Number of processes in the initial view v0 (the first k ids);
  /// 0 means all of them.
  std::size_t initial_members = 0;
  net::NetConfig net;
  vsys::VsConfig vs;
  /// Record per-layer external traces (costs memory on long runs).
  bool record_traces = true;
  /// Feed every external event through the spec acceptors as it happens
  /// (spec::TraceRecorder): the run itself is the conformance check, and
  /// the first violation is available via oracle(). Cheap (E13: acceptance
  /// replays millions of events/s), so it defaults on; benchmarks that want
  /// the raw stack can disable it together with record_traces.
  bool conformance_oracle = true;
  /// TO-automaton behaviour switches, e.g. printed_figure_mode to
  /// re-inject the paper's Figure 5 errata (harness self-validation: the
  /// oracle must reject such runs).
  toimpl::DvsToToOptions to_options;
  /// Ablation knobs (see bench_ablation): the paper's garbage-collection
  /// and registration mechanisms can be switched off to measure their
  /// contribution to adaptivity.
  bool gc_enabled = true;
  bool registration_enabled = true;
  /// Always-on observability: every layer's stats publish into one
  /// obs::MetricsRegistry and the stack's external actions become causal
  /// spans in an obs::TraceLog (see obs::StackTracer). Cheap — counters are
  /// struct-backed and scraped only at snapshot time — but benchmarks that
  /// want the raw stack can disable it.
  bool observability = true;
  /// Vote weights for weighted dynamic voting (empty = the paper's
  /// unweighted rule).
  WeightMap weights;
  /// Crash-restart persistence: every layer journals its durable state
  /// (write-ahead, synchronous within the simulator event) into a stable
  /// store, and Cluster::restart(p) can tear a process down and rebuild it
  /// from that store alone — the kRestart fault. Off by default: the
  /// journaling hooks are never installed and the stack is byte-identical
  /// to the pre-persistence build.
  bool persistence = false;
  /// Where the journals live when persistence is on. Null = the cluster
  /// owns a deterministic in-memory store (simulation default); benches
  /// point this at a storage::FileStableStore to measure real WAL I/O. Must
  /// outlive the cluster.
  storage::StableStore* store = nullptr;

  // ----- host injection (sharded pools) --------------------------------------
  /// Run this cluster on an externally owned event loop / transport instead
  /// of building its own. A sharded pool (src/shard) hosts many protocol
  /// columns over ONE Simulator and ONE network; each column is a full
  /// Cluster with these two set. Both null (the default) keeps the legacy
  /// standalone behaviour: the cluster owns its Simulator and SimNetwork and
  /// is bit-for-bit identical to the pre-injection build. When `transport`
  /// is set, `sim` must be set too; both must outlive the cluster, and
  /// net() (the owned SimNetwork's fault surface) becomes unavailable —
  /// faults are injected on the shared substrate instead.
  sim::Simulator* sim = nullptr;
  net::Transport* transport = nullptr;
  /// With an injected transport: how primary_fraction() asks whether a
  /// process is currently fault-paused (the owned SimNetwork answers
  /// directly in standalone mode). Null = nobody is ever paused.
  std::function<bool(ProcessId)> paused_probe;
};

/// One delivered (BRCV) record.
struct Delivery {
  ProcessId receiver;
  ProcessId origin;
  AppMsg msg;
  sim::Time at;
};

class Cluster {
 public:
  Cluster(ClusterConfig config, std::uint64_t seed);

  /// Starts every node (attaches handlers, starts timers).
  void start();

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  /// The owned simulated network's fault surface. Throws when the cluster
  /// runs on an injected transport (faults then belong to the host).
  [[nodiscard]] net::SimNetwork& net();
  /// The transport every node sends through (owned SimNetwork or injected).
  [[nodiscard]] net::Transport& transport() { return *transport_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const View& v0() const { return v0_; }

  [[nodiscard]] vsys::VsNode& vs_node(ProcessId p) { return *vs_.at(p); }
  [[nodiscard]] dvsys::DvsNode& dvs_node(ProcessId p) { return *dvs_.at(p); }
  [[nodiscard]] ToNode& to_node(ProcessId p) { return *to_.at(p); }

  /// Client broadcast at p (recorded in the TO trace).
  void bcast(ProcessId p, AppMsg a);

  /// Observer invoked on every BRCV delivery, after it is recorded. Lets
  /// applications (e.g. the replicated state-machine library in src/apps)
  /// apply commands as they commit instead of polling deliveries().
  void set_delivery_hook(std::function<void(const Delivery&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Convenience: run the simulation for `duration` of simulated time.
  void run_for(sim::Time duration);

  // ----- crash-restart recovery ----------------------------------------------

  /// Crash-restarts p (FaultPlan kRestart): the whole per-process stack is
  /// destroyed and rebuilt from its stable storage only — VS keeps nothing
  /// but its epoch floor, DVS its att/reg knowledge (Invariants 4.1/4.2
  /// survive the crash), TO its content/order/confirm cursors. The new
  /// incarnation starts with no view and rejoins through the normal
  /// membership protocol; spec acceptors and the span tracer keep checking
  /// across the boundary. Requires persistence (throws otherwise). Safe to
  /// call from a scheduled simulator event — teardown and rebuild are
  /// synchronous, and in-flight datagrams simply arrive at the new
  /// incarnation (the epoch floor makes stale proposals harmless).
  void restart(ProcessId p);

  /// The stable store backing persistence (null when persistence is off).
  /// Tests install barrier hooks on it to enumerate crash points.
  [[nodiscard]] storage::StableStore* store() { return store_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

  /// Journal key of p's `layer` record ("vs" | "dvs" | "to") in the stable
  /// store. Public so shard re-provisioning (src/shard/reprovision.h) can
  /// copy a column's durable state between slots with the same encodings
  /// Cluster itself journals and recovers.
  [[nodiscard]] static std::string storage_key(ProcessId p,
                                               const char* layer);

  /// Records HANDOFF(next)_p in the TO trace / oracle: p's slot has been
  /// re-provisioned onto a host that adopted a survivor's durable state
  /// (see spec::EvHandoff). Call right after restart(p) completes the
  /// rebuild from the transferred journals.
  void record_handoff(ProcessId p, std::uint64_t next);

  // ----- recorded traces and checks ------------------------------------------

  [[nodiscard]] const std::vector<spec::VsEvent>& vs_trace() const {
    return recorder_.vs_trace();
  }
  [[nodiscard]] const std::vector<spec::DvsEvent>& dvs_trace() const {
    return recorder_.dvs_trace();
  }
  [[nodiscard]] const std::vector<spec::ToEvent>& to_trace() const {
    return recorder_.to_trace();
  }

  /// The always-on conformance oracle (acceptors fed online). ok() is false
  /// from the first event the specs cannot match; check_invariants()
  /// re-checks Invariants 4.1/4.2 on the resolved DVS state.
  [[nodiscard]] spec::TraceRecorder& oracle() { return recorder_; }
  [[nodiscard]] const spec::TraceRecorder& oracle() const {
    return recorder_;
  }
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] std::vector<Delivery> deliveries_at(ProcessId p) const;

  /// Replays the recorded traces through the spec acceptors: the executable
  /// statement that the distributed stack implements VS, DVS and TO.
  [[nodiscard]] spec::AcceptResult check_vs_trace() const;
  [[nodiscard]] spec::AcceptResult check_dvs_trace() const;
  [[nodiscard]] spec::AcceptResult check_to_trace() const;

  /// Fraction of processes currently operating in a primary view.
  [[nodiscard]] double primary_fraction() const;

  // ----- observability -------------------------------------------------------

  /// The cluster-wide metrics registry (layers publish through collectors;
  /// usable even with observability disabled — it is just empty).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// The causal span log (empty when observability is disabled).
  [[nodiscard]] const obs::TraceLog& trace() const { return trace_; }

  /// collect() + export of every layer's current counters/gauges plus the
  /// tracer's histograms. Deterministic per seed.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() {
    return metrics_.snapshot();
  }
  [[nodiscard]] std::string trace_json() const { return trace_.to_json(); }

 private:
  /// Installs the callback wrappers (oracle + tracer + layer forwarding)
  /// on p's freshly built node stack. Shared between construction and
  /// restart().
  void wire_process(ProcessId p);
  /// Attaches every layer's journal for p (baseline snapshots double as
  /// compaction after a restart).
  void attach_process_storage(ProcessId p);
  /// bind_metrics for p's three nodes, remembering the collector ids so
  /// restart() can drop the stale collectors.
  void bind_process_metrics(ProcessId p);

  ClusterConfig config_;
  Rng rng_;
  ProcessSet universe_;
  View v0_;
  // Owned in standalone mode, absent with host injection; sim_ names
  // whichever Simulator the cluster actually runs on (declared after
  // owned_sim_ so the reference can bind to it).
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator& sim_;
  std::unique_ptr<net::SimNetwork> net_;  // null with an injected transport
  net::Transport* transport_ = nullptr;   // = net_.get() when owned
  std::unique_ptr<storage::MemStableStore> owned_store_;
  storage::StableStore* store_ = nullptr;  // null = persistence off
  std::map<ProcessId, std::unique_ptr<vsys::VsNode>> vs_;
  std::map<ProcessId, std::unique_ptr<dvsys::DvsNode>> dvs_;
  std::map<ProcessId, std::unique_ptr<ToNode>> to_;
  std::map<ProcessId, std::vector<std::size_t>> collector_ids_;
  std::uint64_t restarts_ = 0;

  std::function<void(const Delivery&)> delivery_hook_;
  spec::TraceRecorder recorder_;
  std::vector<Delivery> deliveries_;

  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  std::unique_ptr<obs::StackTracer> tracer_;  // null when observability off
};

}  // namespace dvs::tosys
