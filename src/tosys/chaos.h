// Chaos harness: FaultPlan-driven adversarial executions of the full
// distributed stack (SimNetwork → VsNode → DvsNode → ToNode) with the
// spec-conformance oracles attached.
//
// One chaos run builds a Cluster with every network anomaly armed
// (loss, duplication, bounded reordering, payload truncation), generates a
// FaultPlan from the seed, schedules a deterministic client broadcast load
// across the fault horizon, and lets the stack fight through it. The
// always-on TraceRecorder oracle checks every externally visible action
// against the Figure 1/2/5 specifications as it happens, and Invariants
// 4.1/4.2 are re-checked periodically against the DVS acceptor's resolved
// state. After the horizon the network heals, everyone resumes, and the run
// settles — recovery paths are exercised, not just degradation.
//
// A violation throws ChaosFailure whose message embeds the seed, the full
// replayable FaultPlan text (net::FaultPlan::parse round-trips it) and the
// tail of the recorded traces. Everything is deterministic in the seed:
// `model_checker --chaos` fans seeds across threads (parallel chaos sweep)
// and reports the lowest failing seed, which reproduces identically with
// --jobs 1.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/fault_plan.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "toimpl/dvs_to_to.h"

namespace dvs::tosys {

struct ChaosConfig {
  std::size_t n_processes = 3;
  /// Processes in the initial view v0 (0 = all). Fewer than n_processes
  /// leaves late joiners whose client broadcasts queue up until their
  /// first view — the join path is part of the adversarial surface (and
  /// exactly where the printed Figure 5 erratum duplicates deliveries).
  std::size_t initial_members = 0;
  /// Scripted faults; `plan.horizon` also bounds the client load and the
  /// periodic invariant checks.
  net::FaultPlanConfig plan;
  /// Steady network anomalies active for the whole run (the plan's
  /// drop-windows and dup-bursts modulate on top of these).
  double drop_probability = 0.02;
  double duplicate_probability = 0.15;
  std::size_t max_duplicates = 2;
  double reorder_probability = 0.15;
  sim::Time reorder_window = 5 * sim::kMillisecond;
  double truncate_probability = 0.02;
  /// Wire-level batching (NetConfig.batching): coalesce same-destination
  /// sends into BATCH envelopes. Off by default — the unbatched stack stays
  /// the reference; test_batch_equivalence proves both conform.
  bool batching = false;
  /// Stability detection inside installed views (VsConfig.stability): true
  /// runs the SST-style watermark table, false the explicit per-message ack
  /// protocol. On by default — watermarks are the production path;
  /// test_watermark_equivalence proves both conform and deliver identically.
  bool watermarks = true;
  /// Carry in-flight payloads in the network's recycled arena slots
  /// (NetConfig.payload_arena). Behaviour-invariant by construction (same
  /// bytes, same RNG draw order); the knob exists so the differential suite
  /// can pin both axes.
  bool payload_arena = true;
  /// Client broadcasts injected at seeded times across the horizon.
  std::size_t broadcasts = 60;
  /// Run time after the final heal/resume, letting recovery complete
  /// before the end-of-run invariant check.
  sim::Time settle = 3 * sim::kSecond;
  /// Re-check Invariants 4.1/4.2 this often during the horizon (0 = only
  /// at the end of the run).
  sim::Time invariant_check_period = 200 * sim::kMillisecond;
  /// TO-automaton switches; printed_figure_mode re-injects the paper's
  /// Figure 5 errata so the sweep can prove the oracle catches them.
  toimpl::DvsToToOptions to_options;
  /// Crash-restart adversary. Note the terminology: a plan's kCrash is
  /// *pause* semantics (the node goes silent, volatile state intact —
  /// SimNetwork::pause); genuine crash-restarts are either scripted
  /// kRestart events (give `plan.w_restart` a weight) or kCrash events
  /// upgraded via `crashes_restart` — the node still pauses for the
  /// crash..recover window but its volatile state is wiped at the crash
  /// instant and rebuilt from stable storage (Cluster::restart), so the
  /// same seed's plan runs under both semantics. Either knob implies
  /// `persistence`; it can also be set alone to measure journaling with no
  /// restarts.
  bool persistence = false;
  bool crashes_restart = false;
};

/// Per-run counters. All fields are deterministic functions of the seed and
/// config; the chaos sweep aggregates them field-wise in seed order, so
/// totals are thread-count independent.
struct ChaosStats {
  std::uint64_t events_checked = 0;      // oracle-fed external events
  std::uint64_t invariant_checks = 0;    // DVS Invariant 4.1/4.2 re-checks
  std::uint64_t views_installed = 0;     // VS installs across all nodes
  std::uint64_t broadcasts = 0;          // client BCASTs injected
  std::uint64_t deliveries = 0;          // TO BRCVs across all nodes
  std::uint64_t fault_events = 0;        // scripted FaultPlan events
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t duplicated = 0;          // extra copies the network injected
  std::uint64_t reordered = 0;           // deliveries that bypassed FIFO
  std::uint64_t truncated = 0;           // payloads cut in flight
  std::uint64_t decode_errors = 0;       // corrupted datagrams dropped clean
  std::uint64_t duplicates_suppressed = 0;  // dup-suppression path hits
  std::uint64_t datagrams = 0;           // datagrams actually on the wire
  std::uint64_t batches = 0;             // BATCH envelopes flushed
  std::uint64_t batched_msgs = 0;        // logical messages carried batched
  std::uint64_t restarts = 0;            // crash-restarts executed
  std::uint64_t wal_appends = 0;         // journal records appended
  std::uint64_t wal_bytes = 0;           // bytes written to stable storage

  /// Full end-of-run metric export of the cluster (every layer's counters,
  /// the tracer's latency histograms and the span-invariant counters).
  /// Deterministic per seed; operator+= merges key-wise, so sweep totals
  /// are byte-identical for any --jobs value.
  obs::MetricsSnapshot metrics;

  friend bool operator==(const ChaosStats&, const ChaosStats&) = default;
};

ChaosStats& operator+=(ChaosStats& a, const ChaosStats& b);

/// A conformance violation under chaos. what() embeds the seed, the
/// oracle's diagnosis, the replayable FaultPlan and the trace tail.
class ChaosFailure : public std::runtime_error {
 public:
  ChaosFailure(std::uint64_t seed, const std::string& message)
      : std::runtime_error(message), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Runs one seeded chaos execution to completion and returns its counters;
/// throws ChaosFailure on any oracle rejection or invariant violation.
[[nodiscard]] ChaosStats run_chaos_seed(std::uint64_t seed,
                                        const ChaosConfig& config = {});

}  // namespace dvs::tosys
