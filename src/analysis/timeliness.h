// Conditional timeliness — the executable analogue of the *timed trace
// property* that accompanies the safety machine in the Fekete–Lynch–
// Shvartsman VS specification [12] ("conditional performance and
// fault-tolerance requirements"). Our paper defers performance properties
// to future work (Section 7); this checker supplies the obvious one:
//
//   If the system has been stable (no fault injections) for at least
//   `stabilization` before a broadcast is offered, and stays stable through
//   the following `deadline`, then the broadcast is delivered at every
//   expected receiver within `deadline`.
//
// Offers falling inside unstable windows are out of scope — the property is
// conditional, exactly like [12]'s.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "sim/simulator.h"
#include "tosys/cluster.h"

namespace dvs::analysis {

struct TimelinessConfig {
  /// Quiet time required before an offer for the property to apply.
  sim::Time stabilization = 500 * sim::kMillisecond;
  /// Commit deadline for in-scope offers.
  sim::Time deadline = 300 * sim::kMillisecond;
};

struct Offer {
  std::uint64_t uid = 0;
  sim::Time at = 0;
};

struct TimelinessReport {
  std::size_t offers_total = 0;
  std::size_t offers_in_scope = 0;
  std::size_t met = 0;
  std::vector<std::uint64_t> violations;  // in-scope offers that missed

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Checks the property over a finished run. `fault_events` are the times of
/// injected faults (partitions, pauses, heals — any connectivity change);
/// `expected_receivers` is the set that must deliver each in-scope offer;
/// `run_end` bounds scope (offers whose deadline extends past the end of
/// the run are not judged).
[[nodiscard]] TimelinessReport check_conditional_timeliness(
    const std::vector<Offer>& offers,
    const std::vector<tosys::Delivery>& deliveries,
    const ProcessSet& expected_receivers,
    const std::vector<sim::Time>& fault_events, const TimelinessConfig& config,
    sim::Time run_end);

}  // namespace dvs::analysis
