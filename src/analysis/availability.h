// Availability accounting and execution analysis for the experiments
// (DESIGN.md E9–E12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baseline/static_primary.h"
#include "common/types.h"
#include "common/view.h"
#include "spec/events.h"
#include "tosys/cluster.h"

namespace dvs::analysis {

/// Availability of one policy over a sampled run: the average (over samples
/// and processes) fraction of live processes that were operating in a
/// primary component under that policy.
struct AvailabilityReport {
  double dynamic_dvs = 0.0;       // the paper's service (per-node view)
  double static_majority = 0.0;   // majority of the static universe
  double oracle_dynamic = 0.0;    // centralized dynamic-voting upper bound
  std::size_t samples = 0;
};

/// Samples a running cluster: call sample() periodically (from a simulator
/// timer); report() averages.
class AvailabilitySampler {
 public:
  AvailabilitySampler(tosys::Cluster& cluster, View initial_primary);

  /// Takes one sample of all three policies.
  void sample();

  /// Feed connectivity changes to the oracle (call whenever the injected
  /// component set changes; `component` is the largest live component).
  void on_configuration_change(const ProcessSet& component);

  [[nodiscard]] AvailabilityReport report() const;

 private:
  tosys::Cluster& cluster_;
  baseline::MajorityDetector majority_;
  baseline::DynamicVotingOracle oracle_;
  bool oracle_has_primary_ = true;
  double acc_dynamic_ = 0.0;
  double acc_static_ = 0.0;
  double acc_oracle_ = 0.0;
  std::size_t samples_ = 0;
};

/// The Lotem–Keidar–Dolev / Cristian chain condition (paper Section 1):
/// every two primary views of an execution are linked by a chain of views
/// such that every consecutive pair has some process that attempted both.
/// Checks it on a recorded DVS trace; returns true iff the graph whose
/// vertices are attempted views and whose edges join views sharing an
/// attempting process is connected.
[[nodiscard]] bool chain_condition_holds(
    const std::vector<spec::DvsEvent>& dvs_trace, const View& v0);

/// The Isis "same messages" property (paper Section 7: "we would like to
/// understand the power of the Isis requirement that processes that move
/// together from one view to the next receive exactly the same messages in
/// the first view"). DVS deliberately does NOT guarantee it — members may
/// receive different prefixes of a view's messages. This analyzer measures
/// how often it holds anyway on a recorded DVS trace: for every view v and
/// every pair of processes that move together from v to the same next view,
/// did they receive the same messages in v?
struct IsisPropertyReport {
  std::size_t pairs_checked = 0;   // (p, q, v) co-moving pairs examined
  std::size_t pairs_equal = 0;     // pairs that received identical messages
  std::size_t views_examined = 0;  // views with at least one co-moving pair

  [[nodiscard]] double fraction_equal() const {
    return pairs_checked == 0
               ? 1.0
               : static_cast<double>(pairs_equal) /
                     static_cast<double>(pairs_checked);
  }
};

[[nodiscard]] IsisPropertyReport isis_same_messages(
    const std::vector<spec::DvsEvent>& dvs_trace, const View& v0);

/// Simple order statistics for latency reporting.
struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] Percentiles percentiles(std::vector<double> samples);

}  // namespace dvs::analysis
