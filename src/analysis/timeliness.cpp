#include "analysis/timeliness.h"

#include <algorithm>
#include <map>

namespace dvs::analysis {

TimelinessReport check_conditional_timeliness(
    const std::vector<Offer>& offers,
    const std::vector<tosys::Delivery>& deliveries,
    const ProcessSet& expected_receivers,
    const std::vector<sim::Time>& fault_events, const TimelinessConfig& config,
    sim::Time run_end) {
  TimelinessReport report;
  report.offers_total = offers.size();

  // Index deliveries: uid → receiver → earliest delivery time.
  std::map<std::uint64_t, std::map<ProcessId, sim::Time>> delivered;
  for (const tosys::Delivery& d : deliveries) {
    auto& at = delivered[d.msg.uid];
    auto it = at.find(d.receiver);
    if (it == at.end() || d.at < it->second) at[d.receiver] = d.at;
  }

  std::vector<sim::Time> faults = fault_events;
  std::sort(faults.begin(), faults.end());

  for (const Offer& offer : offers) {
    const sim::Time window_start =
        offer.at >= config.stabilization ? offer.at - config.stabilization
                                         : 0;
    const sim::Time window_end = offer.at + config.deadline;
    if (window_end > run_end) continue;  // not judged: run ended too soon
    // In scope iff no fault event inside [window_start, window_end].
    auto it = std::lower_bound(faults.begin(), faults.end(), window_start);
    if (it != faults.end() && *it <= window_end) continue;
    ++report.offers_in_scope;

    bool met = true;
    const auto did = delivered.find(offer.uid);
    for (ProcessId p : expected_receivers) {
      if (did == delivered.end()) {
        met = false;
        break;
      }
      auto at = did->second.find(p);
      if (at == did->second.end() || at->second > window_end) {
        met = false;
        break;
      }
    }
    if (met) {
      ++report.met;
    } else {
      report.violations.push_back(offer.uid);
    }
  }
  return report;
}

}  // namespace dvs::analysis
