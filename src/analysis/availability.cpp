#include "analysis/availability.h"

#include <algorithm>
#include <numeric>

namespace dvs::analysis {

AvailabilitySampler::AvailabilitySampler(tosys::Cluster& cluster,
                                         View initial_primary)
    : cluster_(cluster),
      majority_(cluster.universe()),
      oracle_(std::move(initial_primary)) {}

void AvailabilitySampler::on_configuration_change(const ProcessSet& component) {
  oracle_has_primary_ = oracle_.advance(component);
}

void AvailabilitySampler::sample() {
  const ProcessSet& universe = cluster_.universe();
  std::size_t live = 0;
  std::size_t dynamic_primary = 0;
  std::size_t static_primary = 0;
  std::size_t oracle_primary = 0;
  for (ProcessId p : universe) {
    if (cluster_.net().paused(p)) continue;
    ++live;
    const auto& dvs = cluster_.dvs_node(p);
    if (dvs.in_primary()) ++dynamic_primary;
    const auto& vs_view = cluster_.vs_node(p).view();
    if (vs_view.has_value() && majority_.is_primary(vs_view->set())) {
      ++static_primary;
    }
    if (oracle_has_primary_ && oracle_.is_member(p)) ++oracle_primary;
  }
  if (live == 0) return;
  acc_dynamic_ += static_cast<double>(dynamic_primary) / live;
  acc_static_ += static_cast<double>(static_primary) / live;
  acc_oracle_ += static_cast<double>(oracle_primary) / live;
  ++samples_;
}

AvailabilityReport AvailabilitySampler::report() const {
  AvailabilityReport r;
  r.samples = samples_;
  if (samples_ == 0) return r;
  r.dynamic_dvs = acc_dynamic_ / static_cast<double>(samples_);
  r.static_majority = acc_static_ / static_cast<double>(samples_);
  r.oracle_dynamic = acc_oracle_ / static_cast<double>(samples_);
  return r;
}

bool chain_condition_holds(const std::vector<spec::DvsEvent>& dvs_trace,
                           const View& v0) {
  // Collect attempted views and their attempting processes.
  std::map<ViewId, ProcessSet> attempted_by;
  std::map<ViewId, View> views;
  views.emplace(v0.id(), v0);
  attempted_by[v0.id()] = v0.set();
  for (const spec::DvsEvent& ev : dvs_trace) {
    if (const auto* nv = std::get_if<spec::EvNewview>(&ev)) {
      views.emplace(nv->v.id(), nv->v);
      attempted_by[nv->v.id()].insert(nv->p);
    }
  }
  if (views.size() <= 1) return true;
  // Union-find over views: join views that share an attempting process.
  std::vector<ViewId> ids;
  ids.reserve(views.size());
  for (const auto& [g, v] : views) ids.push_back(g);
  std::map<ViewId, std::size_t> index;
  for (std::size_t i = 0; i < ids.size(); ++i) index[ids[i]] = i;
  std::vector<std::size_t> parent(ids.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };
  // Per process, join all views it attempted.
  std::map<ProcessId, std::vector<ViewId>> by_process;
  for (const auto& [g, procs] : attempted_by) {
    for (ProcessId p : procs) by_process[p].push_back(g);
  }
  for (const auto& [p, list] : by_process) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      unite(index[list[i - 1]], index[list[i]]);
    }
  }
  const std::size_t root = find(0);
  return std::all_of(index.begin(), index.end(), [&](const auto& entry) {
    return find(entry.second) == root;
  });
}

IsisPropertyReport isis_same_messages(
    const std::vector<spec::DvsEvent>& dvs_trace, const View& v0) {
  // Replay the trace per process: which view each delivery happened in, and
  // the per-(process, view) delivery multiset (order is shared by the DVS
  // total-order guarantee, so a sequence compare is equivalent).
  std::map<ProcessId, ViewId> current;
  for (ProcessId p : v0.set()) current[p] = v0.id();
  // Per process: the sequence of views it attempted (to find co-movers).
  std::map<ProcessId, std::vector<ViewId>> path;
  for (ProcessId p : v0.set()) path[p].push_back(v0.id());
  // received[p][g]: printable keys of messages p received while in g.
  std::map<ProcessId, std::map<ViewId, std::vector<std::string>>> received;

  for (const spec::DvsEvent& ev : dvs_trace) {
    if (const auto* nv = std::get_if<spec::EvNewview>(&ev)) {
      current[nv->p] = nv->v.id();
      path[nv->p].push_back(nv->v.id());
    } else if (const auto* rcv = std::get_if<spec::EvGprcv<ClientMsg>>(&ev)) {
      auto it = current.find(rcv->receiver);
      if (it != current.end()) {
        received[rcv->receiver][it->second].push_back(to_string(rcv->m));
      }
    }
  }

  IsisPropertyReport report;
  // For every pair of processes and every consecutive (v, v') both have in
  // their paths at the same transition, compare their view-v deliveries.
  std::map<std::pair<ViewId, ViewId>, std::vector<ProcessId>> co_movers;
  for (const auto& [p, views] : path) {
    for (std::size_t i = 1; i < views.size(); ++i) {
      co_movers[{views[i - 1], views[i]}].push_back(p);
    }
  }
  std::set<ViewId> views_with_pairs;
  for (const auto& [transition, procs] : co_movers) {
    if (procs.size() < 2) continue;
    views_with_pairs.insert(transition.first);
    for (std::size_t i = 0; i < procs.size(); ++i) {
      for (std::size_t j = i + 1; j < procs.size(); ++j) {
        ++report.pairs_checked;
        const auto& a = received[procs[i]][transition.first];
        const auto& b = received[procs[j]][transition.first];
        if (a == b) ++report.pairs_equal;
      }
    }
  }
  report.views_examined = views_with_pairs.size();
  return report;
}

Percentiles percentiles(std::vector<double> samples) {
  Percentiles out;
  out.count = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[idx];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
  return out;
}

}  // namespace dvs::analysis
