// Distributed DVS node: the Figure 3 VS-TO-DVS automaton driven over the
// distributed VS layer.
//
// The node's protocol logic IS the verified impl::VsToDvs automaton — the
// same code the model-checking harness exercises against the DVS
// specification. This wrapper wires its inputs to vsys callbacks and fires
// its enabled outputs eagerly after every input (an eager schedule is one
// of the automaton's legal schedules, so all safety results carry over).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"
#include "impl/vs_to_dvs.h"
#include "storage/wal.h"
#include "vsys/vs_node.h"

namespace dvs::dvsys {

struct DvsCallbacks {
  std::function<void(const View&)> on_newview;
  std::function<void(const ClientMsg&, ProcessId from)> on_gprcv;
  std::function<void(const ClientMsg&, ProcessId from)> on_safe;
  /// Observers for trace recording; not part of the service semantics.
  std::function<void(const ClientMsg&)> on_gpsnd;
  std::function<void()> on_register;
};

struct DvsNodeOptions {
  /// Fire DVS-GARBAGE-COLLECT automatically when enabled (the normal mode).
  /// Disabling it is an ablation: `act` never advances, `amb` accumulates
  /// every attempted view, and the majority checks must keep satisfying
  /// every historical view — adaptivity degrades to the static rule (see
  /// bench_ablation).
  bool auto_gc = true;
  /// Vote weights for weighted dynamic voting (see impl::VsToDvsOptions).
  WeightMap weights;
};

struct DvsNodeStats {
  std::uint64_t views_attempted = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t safes_delivered = 0;
  std::uint64_t garbage_collections = 0;
};

class DvsNode {
 public:
  /// `vs` must outlive this node. Callbacks fire synchronously from within
  /// vsys deliveries.
  DvsNode(ProcessId self, const View& v0, vsys::VsNode& vs,
          DvsCallbacks callbacks, DvsNodeOptions options = {});

  /// Replaces the callbacks; must be called before any traffic flows.
  void set_callbacks(DvsCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Client send (DVS-GPSND).
  void gpsnd(const ClientMsg& m);

  /// Client registration (DVS-REGISTER): the application has gathered the
  /// state it needs to operate in the current primary view.
  void register_view();

  /// The VS callbacks to install on the underlying vsys::VsNode.
  [[nodiscard]] vsys::VsCallbacks vs_callbacks();

  [[nodiscard]] ProcessId self() const { return automaton_.self(); }
  /// The current primary view as seen by the client (client-cur).
  [[nodiscard]] const std::optional<View>& primary_view() const {
    return automaton_.client_cur();
  }
  /// True when this node currently operates in a primary view: its client
  /// view is the latest view its service layer installed (i.e. the current
  /// membership was accepted as primary). The availability benches sample
  /// this.
  [[nodiscard]] bool in_primary() const {
    return automaton_.client_cur().has_value() &&
           automaton_.cur().has_value() &&
           automaton_.client_cur()->id() == automaton_.cur()->id();
  }
  [[nodiscard]] const impl::VsToDvs& automaton() const { return automaton_; }
  [[nodiscard]] const DvsNodeStats& stats() const { return stats_; }

  /// Registers a collector that publishes DvsNodeStats as
  /// dvs.*{process="pN"} counters. Returns the collector id so an owner
  /// that rebuilds the node (crash-restart) can remove the stale collector.
  std::size_t bind_metrics(obs::MetricsRegistry& metrics);

  // ----- durability (crash-restart recovery) -------------------------------

  /// Starts journaling the automaton's durable transitions (act advances,
  /// amb additions, attempts, registrations — see impl::DvsDurableState)
  /// into `store` at `key`, writing the current durable state as the
  /// baseline snapshot. Call before any traffic (and after restore()).
  void attach_storage(storage::StableStore& store, const std::string& key);

  /// Reinstates recovered durable state after a crash-restart; forwards to
  /// impl::VsToDvs::restore. Call before any traffic.
  void restore(const impl::DvsDurableState& recovered) {
    automaton_.restore(recovered);
  }

  /// Replays the journal at `key`. An empty/absent log yields the fresh
  /// state a new node with membership `v0` would have; corrupt tails are
  /// discarded (replay is idempotent max-merge/set-insert, so a clean
  /// prefix is always a valid — possibly older — durable state).
  [[nodiscard]] static impl::DvsDurableState recover(
      const storage::StableStore& store, const std::string& key,
      ProcessId self, const View& v0);

 private:
  /// Fires every enabled output/internal action until quiescent.
  void drain();

  /// Writes one WAL snapshot record of the current durable state (also the
  /// compaction step — snapshots replace the whole log).
  void snapshot_state();

  impl::VsToDvs automaton_;
  vsys::VsNode& vs_;
  DvsCallbacks callbacks_;
  DvsNodeOptions options_;
  DvsNodeStats stats_;
  std::optional<storage::Wal> wal_;  // durable-state journal, when attached
};

}  // namespace dvs::dvsys
