#include "dvsys/dvs_node.h"

namespace dvs::dvsys {

DvsNode::DvsNode(ProcessId self, const View& v0, vsys::VsNode& vs,
                 DvsCallbacks callbacks, DvsNodeOptions options)
    : automaton_(self, v0,
                 impl::VsToDvsOptions{.printed_figure_mode = false,
                                      .weights = options.weights}),
      vs_(vs),
      callbacks_(std::move(callbacks)),
      options_(std::move(options)) {}

void DvsNode::gpsnd(const ClientMsg& m) {
  if (callbacks_.on_gpsnd) callbacks_.on_gpsnd(m);
  automaton_.on_dvs_gpsnd(m);
  ++stats_.msgs_sent;
  drain();
}

void DvsNode::register_view() {
  if (callbacks_.on_register) callbacks_.on_register();
  automaton_.on_dvs_register();
  drain();
}

vsys::VsCallbacks DvsNode::vs_callbacks() {
  vsys::VsCallbacks cb;
  cb.on_newview = [this](const View& v) {
    automaton_.on_vs_newview(v);
    drain();
  };
  cb.on_gprcv = [this](const Msg& m, ProcessId from) {
    automaton_.on_vs_gprcv(m, from);
    drain();
  };
  cb.on_safe = [this](const Msg& m, ProcessId from) {
    automaton_.on_vs_safe(m, from);
    drain();
  };
  return cb;
}

namespace {

// DVS journal record types. Replay is idempotent: act records max-merge,
// the rest set-insert — duplicates (possible when a crash lands between an
// append and the action it logs being re-derived) are harmless.
constexpr std::uint8_t kDvsSnapshot = 1;  // full DvsDurableState
constexpr std::uint8_t kDvsAct = 2;       // act := view
constexpr std::uint8_t kDvsAmb = 3;       // amb ∪= {view}
constexpr std::uint8_t kDvsAttempt = 4;   // attempted ∪= {view}
constexpr std::uint8_t kDvsReg = 5;       // reg ∪= {view id}
constexpr std::size_t kDvsCompactEvery = 64;

void encode_snapshot(Writer& w, const impl::DvsDurableState& s) {
  w.view(s.act);
  w.varuint(s.amb.size());
  for (const auto& [g, v] : s.amb) w.view(v);
  w.varuint(s.attempted.size());
  for (const auto& [g, v] : s.attempted) w.view(v);
  w.varuint(s.reg.size());
  for (const ViewId& g : s.reg) w.view_id(g);
}

impl::DvsDurableState decode_snapshot(Reader& r) {
  impl::DvsDurableState s;
  s.act = r.view();
  for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
    View v = r.view();
    s.amb.emplace(v.id(), std::move(v));
  }
  for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
    View v = r.view();
    s.attempted.emplace(v.id(), std::move(v));
  }
  for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
    s.reg.insert(r.view_id());
  }
  return s;
}

}  // namespace

void DvsNode::snapshot_state() {
  const impl::DvsDurableState s = automaton_.durable_state();
  wal_->snapshot(kDvsSnapshot, [&](Writer& w) { encode_snapshot(w, s); });
}

void DvsNode::attach_storage(storage::StableStore& store,
                             const std::string& key) {
  wal_.emplace(store, key);
  snapshot_state();
  impl::DvsDurabilityHooks hooks;
  hooks.on_act = [this](const View& v) {
    wal_->append(kDvsAct, [&](Writer& w) { w.view(v); });
    if (wal_->records_since_snapshot() >= kDvsCompactEvery) snapshot_state();
  };
  hooks.on_amb_add = [this](const View& v) {
    wal_->append(kDvsAmb, [&](Writer& w) { w.view(v); });
    if (wal_->records_since_snapshot() >= kDvsCompactEvery) snapshot_state();
  };
  hooks.on_attempt = [this](const View& v) {
    wal_->append(kDvsAttempt, [&](Writer& w) { w.view(v); });
    if (wal_->records_since_snapshot() >= kDvsCompactEvery) snapshot_state();
  };
  hooks.on_register = [this](const ViewId& g) {
    wal_->append(kDvsReg, [&](Writer& w) { w.view_id(g); });
    if (wal_->records_since_snapshot() >= kDvsCompactEvery) snapshot_state();
  };
  automaton_.set_durability_hooks(std::move(hooks));
}

impl::DvsDurableState DvsNode::recover(const storage::StableStore& store,
                                       const std::string& key, ProcessId self,
                                       const View& v0) {
  // Empty-log fallback: the durable state a fresh node would start with
  // (mirrors the impl::VsToDvs constructor).
  impl::DvsDurableState s;
  s.act = v0;
  if (v0.contains(self)) {
    s.attempted.emplace(v0.id(), v0);
    s.reg.insert(v0.id());
  }
  for (const storage::WalRecord& rec : storage::read_wal(store, key).records) {
    try {
      Reader r(rec.payload);
      switch (rec.type) {
        case kDvsSnapshot:
          s = decode_snapshot(r);
          break;
        case kDvsAct: {
          View v = r.view();
          if (v.id() > s.act.id()) s.act = std::move(v);
          break;
        }
        case kDvsAmb: {
          View v = r.view();
          s.amb.emplace(v.id(), std::move(v));
          break;
        }
        case kDvsAttempt: {
          View v = r.view();
          s.attempted.emplace(v.id(), std::move(v));
          break;
        }
        case kDvsReg:
          s.reg.insert(r.view_id());
          break;
        default:
          break;  // unknown record type: ignore (forward compatibility)
      }
    } catch (const DecodeError&) {
      break;  // undecodable payload ends the usable prefix
    }
  }
  return s;
}

std::size_t DvsNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self().to_string() + "\"}";
  return metrics.add_collector([this, &metrics, label] {
    metrics.counter("dvs.views_attempted" + label).set(stats_.views_attempted);
    metrics.counter("dvs.msgs_sent" + label).set(stats_.msgs_sent);
    metrics.counter("dvs.msgs_delivered" + label).set(stats_.msgs_delivered);
    metrics.counter("dvs.safes_delivered" + label)
        .set(stats_.safes_delivered);
    metrics.counter("dvs.garbage_collections" + label)
        .set(stats_.garbage_collections);
    metrics.gauge("dvs.in_primary" + label).set(in_primary() ? 1 : 0);
  });
}

void DvsNode::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Forward queued messages into the VS layer.
    while (auto m = automaton_.poll_vs_gpsnd()) {
      vs_.gpsnd(*m);
      progressed = true;
    }
    // Accept the current VS view as primary when the checks pass.
    if (automaton_.can_dvs_newview()) {
      const View v = automaton_.apply_dvs_newview();
      ++stats_.views_attempted;
      if (callbacks_.on_newview) callbacks_.on_newview(v);
      progressed = true;
    }
    // Client-facing deliveries and safe indications.
    while (auto d = automaton_.poll_dvs_gprcv()) {
      ++stats_.msgs_delivered;
      if (callbacks_.on_gprcv) callbacks_.on_gprcv(d->first, d->second);
      progressed = true;
    }
    while (auto s = automaton_.poll_dvs_safe()) {
      ++stats_.safes_delivered;
      if (callbacks_.on_safe) callbacks_.on_safe(s->first, s->second);
      progressed = true;
    }
    // Garbage collection of settled views.
    if (!options_.auto_gc) continue;
    for (const View& v : automaton_.gc_candidates()) {
      automaton_.apply_garbage_collect(v);
      ++stats_.garbage_collections;
      progressed = true;
      break;  // candidates changed; re-enumerate
    }
  }
}

}  // namespace dvs::dvsys
