#include "dvsys/dvs_node.h"

namespace dvs::dvsys {

DvsNode::DvsNode(ProcessId self, const View& v0, vsys::VsNode& vs,
                 DvsCallbacks callbacks, DvsNodeOptions options)
    : automaton_(self, v0,
                 impl::VsToDvsOptions{.printed_figure_mode = false,
                                      .weights = options.weights}),
      vs_(vs),
      callbacks_(std::move(callbacks)),
      options_(std::move(options)) {}

void DvsNode::gpsnd(const ClientMsg& m) {
  if (callbacks_.on_gpsnd) callbacks_.on_gpsnd(m);
  automaton_.on_dvs_gpsnd(m);
  ++stats_.msgs_sent;
  drain();
}

void DvsNode::register_view() {
  if (callbacks_.on_register) callbacks_.on_register();
  automaton_.on_dvs_register();
  drain();
}

vsys::VsCallbacks DvsNode::vs_callbacks() {
  vsys::VsCallbacks cb;
  cb.on_newview = [this](const View& v) {
    automaton_.on_vs_newview(v);
    drain();
  };
  cb.on_gprcv = [this](const Msg& m, ProcessId from) {
    automaton_.on_vs_gprcv(m, from);
    drain();
  };
  cb.on_safe = [this](const Msg& m, ProcessId from) {
    automaton_.on_vs_safe(m, from);
    drain();
  };
  return cb;
}

void DvsNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self().to_string() + "\"}";
  metrics.add_collector([this, &metrics, label] {
    metrics.counter("dvs.views_attempted" + label).set(stats_.views_attempted);
    metrics.counter("dvs.msgs_sent" + label).set(stats_.msgs_sent);
    metrics.counter("dvs.msgs_delivered" + label).set(stats_.msgs_delivered);
    metrics.counter("dvs.safes_delivered" + label)
        .set(stats_.safes_delivered);
    metrics.counter("dvs.garbage_collections" + label)
        .set(stats_.garbage_collections);
    metrics.gauge("dvs.in_primary" + label).set(in_primary() ? 1 : 0);
  });
}

void DvsNode::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Forward queued messages into the VS layer.
    while (auto m = automaton_.poll_vs_gpsnd()) {
      vs_.gpsnd(*m);
      progressed = true;
    }
    // Accept the current VS view as primary when the checks pass.
    if (automaton_.can_dvs_newview()) {
      const View v = automaton_.apply_dvs_newview();
      ++stats_.views_attempted;
      if (callbacks_.on_newview) callbacks_.on_newview(v);
      progressed = true;
    }
    // Client-facing deliveries and safe indications.
    while (auto d = automaton_.poll_dvs_gprcv()) {
      ++stats_.msgs_delivered;
      if (callbacks_.on_gprcv) callbacks_.on_gprcv(d->first, d->second);
      progressed = true;
    }
    while (auto s = automaton_.poll_dvs_safe()) {
      ++stats_.safes_delivered;
      if (callbacks_.on_safe) callbacks_.on_safe(s->first, s->second);
      progressed = true;
    }
    // Garbage collection of settled views.
    if (!options_.auto_gc) continue;
    for (const View& v : automaton_.gc_candidates()) {
      automaton_.apply_garbage_collect(v);
      ++stats_.garbage_collections;
      progressed = true;
      break;  // candidates changed; re-enumerate
    }
  }
}

}  // namespace dvs::dvsys
