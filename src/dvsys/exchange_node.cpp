#include "dvsys/exchange_node.h"

namespace dvs::dvsys {

ExchangeDvsNode::ExchangeDvsNode(ProcessId self, ExchangeCallbacks callbacks)
    : self_(self), callbacks_(std::move(callbacks)) {}

DvsCallbacks ExchangeDvsNode::dvs_callbacks(DvsNode& dvs) {
  DvsCallbacks cb;
  cb.on_newview = [this, &dvs](const View& v) { on_newview(dvs, v); };
  cb.on_gprcv = [this, &dvs](const ClientMsg& m, ProcessId from) {
    on_gprcv(dvs, m, from);
  };
  cb.on_safe = [this](const ClientMsg& m, ProcessId from) {
    // State-blob safes complete the exchange stabilization; application
    // safes are forwarded only in established views (a safe for a deferred
    // message cannot arrive before the message itself: deliver-before-safe).
    if (std::holds_alternative<StateMsg>(m)) return;
    if (established_ && callbacks_.on_safe) callbacks_.on_safe(m, from);
  };
  return cb;
}

void ExchangeDvsNode::on_newview(DvsNode& dvs, const View& v) {
  view_ = v;
  established_ = false;
  blobs_.clear();
  deferred_.clear();
  ++stats_.views_seen;
  // Multicast this node's state blob for the exchange.
  const std::string blob = callbacks_.make_state ? callbacks_.make_state()
                                                 : std::string{};
  dvs.gpsnd(ClientMsg{StateMsg{v.id(), blob}});
  ++stats_.blobs_sent;
}

void ExchangeDvsNode::on_gprcv(DvsNode& dvs, const ClientMsg& m,
                               ProcessId from) {
  if (const auto* st = std::get_if<StateMsg>(&m)) {
    if (!view_.has_value() || st->view != view_->id()) {
      // A blob for a view the exchange already moved past; count the drop
      // so chaos runs can see how often exchanges restart mid-flight.
      ++stats_.stale_blobs;
      return;
    }
    blobs_.emplace(from, st->blob);
    ++stats_.blobs_received;
    maybe_establish(dvs);
    return;
  }
  if (!established_) {
    deferred_.emplace_back(m, from);
    return;
  }
  if (callbacks_.on_gprcv) callbacks_.on_gprcv(m, from);
}

void ExchangeDvsNode::maybe_establish(DvsNode& dvs) {
  if (established_ || !view_.has_value()) return;
  for (ProcessId q : view_->set()) {
    if (!blobs_.contains(q)) return;
  }
  established_ = true;
  ++stats_.views_established;
  if (callbacks_.on_established) callbacks_.on_established(*view_, blobs_);
  // The exchange is complete: tell the service (DVS-REGISTER), replay
  // deliveries that raced the exchange, then flush buffered client sends.
  dvs.register_view();
  while (!deferred_.empty()) {
    auto [m, from] = std::move(deferred_.front());
    deferred_.pop_front();
    if (callbacks_.on_gprcv) callbacks_.on_gprcv(m, from);
  }
  while (!outbox_.empty()) {
    dvs.gpsnd(outbox_.front());
    outbox_.pop_front();
  }
}

void ExchangeDvsNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self_.to_string() + "\"}";
  metrics.add_collector([this, &metrics, label] {
    metrics.counter("exchange.views_seen" + label).set(stats_.views_seen);
    metrics.counter("exchange.views_established" + label)
        .set(stats_.views_established);
    metrics.counter("exchange.blobs_sent" + label).set(stats_.blobs_sent);
    metrics.counter("exchange.blobs_received" + label)
        .set(stats_.blobs_received);
    metrics.counter("exchange.stale_blobs" + label).set(stats_.stale_blobs);
  });
}

void ExchangeDvsNode::gpsnd(DvsNode& dvs, const ClientMsg& m) {
  if (!established_) {
    outbox_.push_back(m);
    return;
  }
  dvs.gpsnd(m);
}

}  // namespace dvs::dvsys
