#include "dvsys/exchange_node.h"

#include <algorithm>
#include <utility>

namespace dvs::dvsys {

ExchangeDvsNode::ExchangeDvsNode(ProcessId self, ExchangeCallbacks callbacks)
    : self_(self), callbacks_(std::move(callbacks)) {}

DvsCallbacks ExchangeDvsNode::dvs_callbacks(DvsNode& dvs) {
  DvsCallbacks cb;
  cb.on_newview = [this, &dvs](const View& v) { on_newview(dvs, v); };
  cb.on_gprcv = [this, &dvs](const ClientMsg& m, ProcessId from) {
    on_gprcv(dvs, m, from);
  };
  cb.on_safe = [this](const ClientMsg& m, ProcessId from) {
    // State-blob safes complete the exchange stabilization (and confirm
    // delta bases); application safes are forwarded only in established
    // views (a safe for a deferred message cannot arrive before the message
    // itself: deliver-before-safe).
    if (const auto* st = std::get_if<StateMsg>(&m)) {
      on_safe_state(*st, from);
      return;
    }
    if (established_ && callbacks_.on_safe) callbacks_.on_safe(m, from);
  };
  return cb;
}

void ExchangeDvsNode::on_newview(DvsNode& dvs, const View& v) {
  view_ = v;
  established_ = false;
  blobs_.clear();
  deferred_.clear();
  ++stats_.views_seen;
  // Multicast this node's state blob for the exchange — as a delta against
  // the last safely-exchanged blob when every recipient is known to hold
  // that base (safe ⇒ receipt at every member of the base's view), as the
  // full blob otherwise.
  const std::string blob = callbacks_.make_state ? callbacks_.make_state()
                                                 : std::string{};
  StateMsg st{v.id(), blob};
  if (confirmed_.has_value() &&
      std::includes(confirmed_->members.begin(), confirmed_->members.end(),
                    v.set().begin(), v.set().end())) {
    const auto [bit, nit] = std::mismatch(
        confirmed_->blob.begin(), confirmed_->blob.end(), blob.begin(),
        blob.end());
    const auto lcp = static_cast<std::uint64_t>(bit - confirmed_->blob.begin());
    if (lcp > 0) {
      st.is_delta = true;
      st.base_view = confirmed_->view;
      st.keep_len = lcp;
      st.blob = blob.substr(lcp);
      ++stats_.delta_blobs_sent;
      stats_.delta_bytes_saved += lcp;
    }
  }
  last_sent_ = SentExchange{v.id(), v.set(), blob};
  dvs.gpsnd(ClientMsg{st});
  ++stats_.blobs_sent;
}

void ExchangeDvsNode::on_safe_state(const StateMsg& st, ProcessId from) {
  if (from != self_ || !last_sent_.has_value() ||
      st.view != last_sent_->view) {
    return;
  }
  // My own exchange blob went safe in the view it was sent for: every
  // member of that view holds the full content, so it is a sound base for
  // future deltas to any subset membership.
  confirmed_ = last_sent_;
}

std::optional<std::string> ExchangeDvsNode::reconstruct_and_store(
    ProcessId from, const StateMsg& st) {
  auto& history = peer_blobs_[from];
  if (!st.is_delta) {
    history.insert_or_assign(st.view, st.blob);
    return st.blob;
  }
  ++stats_.delta_blobs_received;
  const auto base = history.find(st.base_view);
  if (base == history.end() || st.keep_len > base->second.size()) {
    ++stats_.delta_unreconstructable;
    return std::nullopt;
  }
  std::string full = base->second.substr(0, st.keep_len) + st.blob;
  // The sender never deltas below this base again (its confirmed base is
  // monotone), so older history for this peer is dead weight.
  history.erase(history.begin(), base);
  history.insert_or_assign(st.view, full);
  return full;
}

void ExchangeDvsNode::on_gprcv(DvsNode& dvs, const ClientMsg& m,
                               ProcessId from) {
  if (const auto* st = std::get_if<StateMsg>(&m)) {
    // Record/reconstruct even when the exchange has moved on: a stale
    // exchange's content can still be the base of a future delta (the
    // sender only needs its safe, not our establishment).
    std::optional<std::string> full = reconstruct_and_store(from, *st);
    if (!view_.has_value() || st->view != view_->id()) {
      // A blob for a view the exchange already moved past; count the drop
      // so chaos runs can see how often exchanges restart mid-flight.
      ++stats_.stale_blobs;
      return;
    }
    if (!full.has_value()) return;  // counted as delta_unreconstructable
    blobs_.emplace(from, std::move(*full));
    ++stats_.blobs_received;
    maybe_establish(dvs);
    return;
  }
  if (!established_) {
    deferred_.emplace_back(m, from);
    return;
  }
  if (callbacks_.on_gprcv) callbacks_.on_gprcv(m, from);
}

void ExchangeDvsNode::maybe_establish(DvsNode& dvs) {
  if (established_ || !view_.has_value()) return;
  for (ProcessId q : view_->set()) {
    if (!blobs_.contains(q)) return;
  }
  established_ = true;
  ++stats_.views_established;
  if (callbacks_.on_established) callbacks_.on_established(*view_, blobs_);
  // The exchange is complete: tell the service (DVS-REGISTER), replay
  // deliveries that raced the exchange, then flush buffered client sends.
  dvs.register_view();
  while (!deferred_.empty()) {
    auto [m, from] = std::move(deferred_.front());
    deferred_.pop_front();
    if (callbacks_.on_gprcv) callbacks_.on_gprcv(m, from);
  }
  while (!outbox_.empty()) {
    dvs.gpsnd(outbox_.front());
    outbox_.pop_front();
  }
}

void ExchangeDvsNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self_.to_string() + "\"}";
  metrics.add_collector([this, &metrics, label] {
    metrics.counter("exchange.views_seen" + label).set(stats_.views_seen);
    metrics.counter("exchange.views_established" + label)
        .set(stats_.views_established);
    metrics.counter("exchange.blobs_sent" + label).set(stats_.blobs_sent);
    metrics.counter("exchange.blobs_received" + label)
        .set(stats_.blobs_received);
    metrics.counter("exchange.stale_blobs" + label).set(stats_.stale_blobs);
    metrics.counter("exchange.delta_blobs_sent" + label)
        .set(stats_.delta_blobs_sent);
    metrics.counter("exchange.delta_bytes_saved" + label)
        .set(stats_.delta_bytes_saved);
    metrics.counter("exchange.delta_blobs_received" + label)
        .set(stats_.delta_blobs_received);
    metrics.counter("exchange.delta_unreconstructable" + label)
        .set(stats_.delta_unreconstructable);
  });
}

void ExchangeDvsNode::gpsnd(DvsNode& dvs, const ClientMsg& m) {
  if (!established_) {
    outbox_.push_back(m);
    return;
  }
  dvs.gpsnd(m);
}

}  // namespace dvs::dvsys
