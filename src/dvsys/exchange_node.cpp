#include "dvsys/exchange_node.h"

#include <algorithm>
#include <utility>

namespace dvs::dvsys {

namespace {

// Exchange journal record types. Replay is idempotent: peer records
// insert-or-assign (last writer wins per ⟨peer, view⟩), sent/confirmed
// records overwrite the single optional slot.
constexpr std::uint8_t kExSnapshot = 1;   // full ExchangeDurableState
constexpr std::uint8_t kExPeer = 2;       // peer_blobs[p][view] := blob
constexpr std::uint8_t kExSent = 3;       // last_sent := record
constexpr std::uint8_t kExConfirmed = 4;  // confirmed := record
constexpr std::size_t kExCompactEvery = 32;

void encode_sent(Writer& w, const ExchangeDurableState::SentRecord& s) {
  w.view_id(s.view);
  w.process_set(s.members);
  w.str(s.blob);
}

ExchangeDurableState::SentRecord decode_sent(Reader& r) {
  ExchangeDurableState::SentRecord s;
  s.view = r.view_id();
  s.members = r.process_set();
  s.blob = r.str();
  return s;
}

void encode_snapshot(Writer& w, const ExchangeDurableState& s) {
  w.varuint(s.peer_blobs.size());
  for (const auto& [p, history] : s.peer_blobs) {
    w.process_id(p);
    w.varuint(history.size());
    for (const auto& [g, blob] : history) {
      w.view_id(g);
      w.str(blob);
    }
  }
  w.u8(s.last_sent.has_value() ? 1 : 0);
  if (s.last_sent.has_value()) encode_sent(w, *s.last_sent);
  w.u8(s.confirmed.has_value() ? 1 : 0);
  if (s.confirmed.has_value()) encode_sent(w, *s.confirmed);
}

ExchangeDurableState decode_snapshot(Reader& r) {
  ExchangeDurableState s;
  for (std::size_t i = 0, n = r.count(2); i < n; ++i) {
    auto& history = s.peer_blobs[r.process_id()];
    for (std::size_t j = 0, m = r.count(2); j < m; ++j) {
      ViewId g = r.view_id();
      history.insert_or_assign(g, r.str());
    }
  }
  if (r.u8() != 0) s.last_sent = decode_sent(r);
  if (r.u8() != 0) s.confirmed = decode_sent(r);
  return s;
}

}  // namespace

ExchangeDvsNode::ExchangeDvsNode(ProcessId self, ExchangeCallbacks callbacks)
    : self_(self), callbacks_(std::move(callbacks)) {}

DvsCallbacks ExchangeDvsNode::dvs_callbacks(DvsNode& dvs) {
  DvsCallbacks cb;
  cb.on_newview = [this, &dvs](const View& v) { on_newview(dvs, v); };
  cb.on_gprcv = [this, &dvs](const ClientMsg& m, ProcessId from) {
    on_gprcv(dvs, m, from);
  };
  cb.on_safe = [this](const ClientMsg& m, ProcessId from) {
    // State-blob safes complete the exchange stabilization (and confirm
    // delta bases); application safes are forwarded only in established
    // views (a safe for a deferred message cannot arrive before the message
    // itself: deliver-before-safe).
    if (const auto* st = std::get_if<StateMsg>(&m)) {
      on_safe_state(*st, from);
      return;
    }
    if (established_ && callbacks_.on_safe) callbacks_.on_safe(m, from);
  };
  return cb;
}

void ExchangeDvsNode::on_newview(DvsNode& dvs, const View& v) {
  view_ = v;
  established_ = false;
  blobs_.clear();
  deferred_.clear();
  ++stats_.views_seen;
  // Multicast this node's state blob for the exchange — as a delta against
  // the last safely-exchanged blob when every recipient is known to hold
  // that base (safe ⇒ receipt at every member of the base's view), as the
  // full blob otherwise.
  const std::string blob = callbacks_.make_state ? callbacks_.make_state()
                                                 : std::string{};
  StateMsg st{v.id(), blob};
  if (confirmed_.has_value() &&
      std::includes(confirmed_->members.begin(), confirmed_->members.end(),
                    v.set().begin(), v.set().end())) {
    const auto [bit, nit] = std::mismatch(
        confirmed_->blob.begin(), confirmed_->blob.end(), blob.begin(),
        blob.end());
    const auto lcp = static_cast<std::uint64_t>(bit - confirmed_->blob.begin());
    if (lcp > 0) {
      st.is_delta = true;
      st.base_view = confirmed_->view;
      st.keep_len = lcp;
      st.blob = blob.substr(lcp);
      ++stats_.delta_blobs_sent;
      stats_.delta_bytes_saved += lcp;
    }
  }
  last_sent_ = SentExchange{v.id(), v.set(), blob};
  if (wal_.has_value()) {
    wal_->append(kExSent, [&](Writer& w) { encode_sent(w, *last_sent_); });
    maybe_compact();
  }
  dvs.gpsnd(ClientMsg{st});
  ++stats_.blobs_sent;
}

void ExchangeDvsNode::on_safe_state(const StateMsg& st, ProcessId from) {
  if (from != self_ || !last_sent_.has_value() ||
      st.view != last_sent_->view) {
    return;
  }
  // My own exchange blob went safe in the view it was sent for: every
  // member of that view holds the full content, so it is a sound base for
  // future deltas to any subset membership.
  confirmed_ = last_sent_;
  if (wal_.has_value()) {
    wal_->append(kExConfirmed,
                 [&](Writer& w) { encode_sent(w, *confirmed_); });
    maybe_compact();
  }
}

std::optional<std::string> ExchangeDvsNode::reconstruct_and_store(
    ProcessId from, const StateMsg& st) {
  auto& history = peer_blobs_[from];
  if (!st.is_delta) {
    history.insert_or_assign(st.view, st.blob);
    log_peer_blob(from, st.view, st.blob);
    return st.blob;
  }
  ++stats_.delta_blobs_received;
  const auto base = history.find(st.base_view);
  if (base == history.end() || st.keep_len > base->second.size()) {
    ++stats_.delta_unreconstructable;
    return std::nullopt;
  }
  std::string full = base->second.substr(0, st.keep_len) + st.blob;
  // The sender never deltas below this base again (its confirmed base is
  // monotone), so older history for this peer is dead weight.
  history.erase(history.begin(), base);
  history.insert_or_assign(st.view, full);
  // The journal gets the *reconstructed* full blob, before the exchange
  // acts on it: recovery must never have to re-resolve a delta whose base
  // only existed in volatile memory.
  log_peer_blob(from, st.view, full);
  return full;
}

void ExchangeDvsNode::log_peer_blob(ProcessId from, const ViewId& view,
                                    const std::string& blob) {
  if (!wal_.has_value()) return;
  wal_->append(kExPeer, [&](Writer& w) {
    w.process_id(from);
    w.view_id(view);
    w.str(blob);
  });
  maybe_compact();
}

void ExchangeDvsNode::on_gprcv(DvsNode& dvs, const ClientMsg& m,
                               ProcessId from) {
  if (const auto* st = std::get_if<StateMsg>(&m)) {
    // Record/reconstruct even when the exchange has moved on: a stale
    // exchange's content can still be the base of a future delta (the
    // sender only needs its safe, not our establishment).
    std::optional<std::string> full = reconstruct_and_store(from, *st);
    if (!view_.has_value() || st->view != view_->id()) {
      // A blob for a view the exchange already moved past; count the drop
      // so chaos runs can see how often exchanges restart mid-flight.
      ++stats_.stale_blobs;
      return;
    }
    if (!full.has_value()) return;  // counted as delta_unreconstructable
    blobs_.emplace(from, std::move(*full));
    ++stats_.blobs_received;
    maybe_establish(dvs);
    return;
  }
  if (!established_) {
    deferred_.emplace_back(m, from);
    return;
  }
  if (callbacks_.on_gprcv) callbacks_.on_gprcv(m, from);
}

void ExchangeDvsNode::maybe_establish(DvsNode& dvs) {
  if (established_ || !view_.has_value()) return;
  for (ProcessId q : view_->set()) {
    if (!blobs_.contains(q)) return;
  }
  established_ = true;
  ++stats_.views_established;
  if (callbacks_.on_established) callbacks_.on_established(*view_, blobs_);
  // The exchange is complete: tell the service (DVS-REGISTER), replay
  // deliveries that raced the exchange, then flush buffered client sends.
  dvs.register_view();
  while (!deferred_.empty()) {
    auto [m, from] = std::move(deferred_.front());
    deferred_.pop_front();
    if (callbacks_.on_gprcv) callbacks_.on_gprcv(m, from);
  }
  while (!outbox_.empty()) {
    dvs.gpsnd(outbox_.front());
    outbox_.pop_front();
  }
}

std::size_t ExchangeDvsNode::bind_metrics(obs::MetricsRegistry& metrics) {
  const std::string label = "{process=\"" + self_.to_string() + "\"}";
  return metrics.add_collector([this, &metrics, label] {
    metrics.counter("exchange.views_seen" + label).set(stats_.views_seen);
    metrics.counter("exchange.views_established" + label)
        .set(stats_.views_established);
    metrics.counter("exchange.blobs_sent" + label).set(stats_.blobs_sent);
    metrics.counter("exchange.blobs_received" + label)
        .set(stats_.blobs_received);
    metrics.counter("exchange.stale_blobs" + label).set(stats_.stale_blobs);
    metrics.counter("exchange.delta_blobs_sent" + label)
        .set(stats_.delta_blobs_sent);
    metrics.counter("exchange.delta_bytes_saved" + label)
        .set(stats_.delta_bytes_saved);
    metrics.counter("exchange.delta_blobs_received" + label)
        .set(stats_.delta_blobs_received);
    metrics.counter("exchange.delta_unreconstructable" + label)
        .set(stats_.delta_unreconstructable);
  });
}

ExchangeDurableState ExchangeDvsNode::durable_state() const {
  ExchangeDurableState s;
  s.peer_blobs = peer_blobs_;
  s.last_sent = last_sent_;
  s.confirmed = confirmed_;
  return s;
}

void ExchangeDvsNode::snapshot_state() {
  const ExchangeDurableState s = durable_state();
  wal_->snapshot(kExSnapshot, [&](Writer& w) { encode_snapshot(w, s); });
}

void ExchangeDvsNode::maybe_compact() {
  if (wal_->records_since_snapshot() >= kExCompactEvery) snapshot_state();
}

void ExchangeDvsNode::attach_storage(storage::StableStore& store,
                                     const std::string& key) {
  wal_.emplace(store, key);
  snapshot_state();
}

void ExchangeDvsNode::restore(const ExchangeDurableState& recovered) {
  peer_blobs_ = recovered.peer_blobs;
  last_sent_ = recovered.last_sent;
  confirmed_ = recovered.confirmed;
  view_ = std::nullopt;
  established_ = false;
  blobs_.clear();
  deferred_.clear();
  outbox_.clear();
}

ExchangeDurableState ExchangeDvsNode::recover(
    const storage::StableStore& store, const std::string& key) {
  ExchangeDurableState s;
  for (const storage::WalRecord& rec : storage::read_wal(store, key).records) {
    try {
      Reader r(rec.payload);
      switch (rec.type) {
        case kExSnapshot:
          s = decode_snapshot(r);
          break;
        case kExPeer: {
          ProcessId p = r.process_id();
          ViewId g = r.view_id();
          s.peer_blobs[p].insert_or_assign(g, r.str());
          break;
        }
        case kExSent:
          s.last_sent = decode_sent(r);
          break;
        case kExConfirmed:
          s.confirmed = decode_sent(r);
          break;
        default:
          break;  // unknown record type: ignore (forward compatibility)
      }
    } catch (const DecodeError&) {
      break;  // undecodable payload ends the usable prefix
    }
  }
  return s;
}

void ExchangeDvsNode::gpsnd(DvsNode& dvs, const ClientMsg& m) {
  if (!established_) {
    outbox_.push_back(m);
    return;
  }
  dvs.gpsnd(m);
}

}  // namespace dvs::dvsys
