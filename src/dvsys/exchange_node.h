// Service-supported state exchange — the DVS variation the paper's
// Discussion (Section 7) proposes: "one in which the state exchange at the
// beginning of a new view is supported by the dynamic view service".
//
// ExchangeDvsNode wraps a DvsNode and runs the recovery choreography that
// Figure 5's application otherwise hand-rolls:
//   * on every new primary view it asks the application for a state blob
//     (make_state) and multicasts it to the members;
//   * it collects the members' blobs; once all have arrived it reports the
//     view as *established* (on_established, with every member's blob) and
//     issues DVS-REGISTER on the application's behalf;
//   * ordinary client messages flow through unchanged, but are withheld
//     (buffered) until the view is established, so the application only
//     ever computes in fully-recovered views.
//
// This gives "coherent data" applications a drop-in recovery protocol: the
// replicated-state-machine library (src/apps) is ~100 lines on top of it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "dvsys/dvs_node.h"

namespace dvs::dvsys {

struct ExchangeCallbacks {
  /// Produce this node's state blob for the new view's exchange.
  std::function<std::string()> make_state;
  /// The view is established: blobs from every member, keyed by process.
  std::function<void(const View&, const std::map<ProcessId, std::string>&)>
      on_established;
  /// Ordinary traffic, delivered only in established views.
  std::function<void(const ClientMsg&, ProcessId from)> on_gprcv;
  std::function<void(const ClientMsg&, ProcessId from)> on_safe;
};

struct ExchangeNodeStats {
  std::uint64_t views_seen = 0;
  std::uint64_t views_established = 0;
  std::uint64_t blobs_sent = 0;
  std::uint64_t blobs_received = 0;
  /// Blobs discarded because they arrived for a view other than the current
  /// one (the exchange already moved on).
  std::uint64_t stale_blobs = 0;
  /// Delta encoding: exchanges shipped as a suffix past the recipient-known
  /// base (vs. full blobs), the base-prefix bytes that stayed off the wire,
  /// deltas received, and deltas whose base this node did not hold — the
  /// protocol guarantees the base is always held (safe ⇒ receipt at every
  /// member), so unreconstructable must stay 0.
  std::uint64_t delta_blobs_sent = 0;
  std::uint64_t delta_bytes_saved = 0;
  std::uint64_t delta_blobs_received = 0;
  std::uint64_t delta_unreconstructable = 0;
};

class ExchangeDvsNode {
 public:
  ExchangeDvsNode(ProcessId self, ExchangeCallbacks callbacks);

  /// The DVS callbacks to install on the underlying DvsNode.
  [[nodiscard]] DvsCallbacks dvs_callbacks(DvsNode& dvs);

  /// Client send; only legal in an established view (buffered otherwise the
  /// application would race its own recovery).
  void gpsnd(DvsNode& dvs, const ClientMsg& m);

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const std::optional<View>& view() const { return view_; }
  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] const ExchangeNodeStats& stats() const { return stats_; }

  /// Registers a collector that publishes ExchangeNodeStats as
  /// exchange.*{process="pN"} counters. The node must outlive the
  /// registry's last collect().
  void bind_metrics(obs::MetricsRegistry& metrics);

 private:
  void on_newview(DvsNode& dvs, const View& v);
  void on_gprcv(DvsNode& dvs, const ClientMsg& m, ProcessId from);
  void on_safe_state(const StateMsg& st, ProcessId from);
  void maybe_establish(DvsNode& dvs);
  /// Resolves a wire StateMsg to the sender's full blob (applying the delta
  /// against the stored base when needed) and records it in the per-peer
  /// history. nullopt iff a delta's base is missing (delta_unreconstructable).
  [[nodiscard]] std::optional<std::string> reconstruct_and_store(
      ProcessId from, const StateMsg& st);

  ProcessId self_;
  ExchangeCallbacks callbacks_;
  std::optional<View> view_;
  bool established_ = false;
  std::map<ProcessId, std::string> blobs_;
  // Delta state exchange. Sender side: the blob most recently multicast
  // (last_sent_) becomes the confirmed delta base once its safe indication
  // arrives in the same view — safe means every member of that view
  // received it, so any future view whose membership is a subset can be
  // sent just the suffix past the common prefix. Receiver side: full blob
  // contents per peer per exchange view, kept across view changes so a
  // delta's base is always resolvable; entries strictly below an observed
  // base are pruned (the sender's confirmed base is monotone).
  struct SentExchange {
    ViewId view;
    ProcessSet members;
    std::string blob;
  };
  std::optional<SentExchange> last_sent_;
  std::optional<SentExchange> confirmed_;
  std::map<ProcessId, std::map<ViewId, std::string>> peer_blobs_;
  // Deliveries that raced the exchange: replayed right after establishment
  // (the same deferral discipline the corrected Figure 5 uses).
  std::deque<std::pair<ClientMsg, ProcessId>> deferred_;
  // Client sends issued before establishment, flushed on establishment.
  std::deque<ClientMsg> outbox_;
  ExchangeNodeStats stats_;
};

}  // namespace dvs::dvsys
