// Service-supported state exchange — the DVS variation the paper's
// Discussion (Section 7) proposes: "one in which the state exchange at the
// beginning of a new view is supported by the dynamic view service".
//
// ExchangeDvsNode wraps a DvsNode and runs the recovery choreography that
// Figure 5's application otherwise hand-rolls:
//   * on every new primary view it asks the application for a state blob
//     (make_state) and multicasts it to the members;
//   * it collects the members' blobs; once all have arrived it reports the
//     view as *established* (on_established, with every member's blob) and
//     issues DVS-REGISTER on the application's behalf;
//   * ordinary client messages flow through unchanged, but are withheld
//     (buffered) until the view is established, so the application only
//     ever computes in fully-recovered views.
//
// This gives "coherent data" applications a drop-in recovery protocol: the
// replicated-state-machine library (src/apps) is ~100 lines on top of it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/ring.h"
#include "dvsys/dvs_node.h"
#include "storage/wal.h"

namespace dvs::dvsys {

struct ExchangeCallbacks {
  /// Produce this node's state blob for the new view's exchange.
  std::function<std::string()> make_state;
  /// The view is established: blobs from every member, keyed by process.
  std::function<void(const View&, const std::map<ProcessId, std::string>&)>
      on_established;
  /// Ordinary traffic, delivered only in established views.
  std::function<void(const ClientMsg&, ProcessId from)> on_gprcv;
  std::function<void(const ClientMsg&, ProcessId from)> on_safe;
};

struct ExchangeNodeStats {
  std::uint64_t views_seen = 0;
  std::uint64_t views_established = 0;
  std::uint64_t blobs_sent = 0;
  std::uint64_t blobs_received = 0;
  /// Blobs discarded because they arrived for a view other than the current
  /// one (the exchange already moved on).
  std::uint64_t stale_blobs = 0;
  /// Delta encoding: exchanges shipped as a suffix past the recipient-known
  /// base (vs. full blobs), the base-prefix bytes that stayed off the wire,
  /// deltas received, and deltas whose base this node did not hold — the
  /// protocol guarantees the base is always held (safe ⇒ receipt at every
  /// member), so unreconstructable must stay 0.
  std::uint64_t delta_blobs_sent = 0;
  std::uint64_t delta_bytes_saved = 0;
  std::uint64_t delta_blobs_received = 0;
  std::uint64_t delta_unreconstructable = 0;
};

/// The exchange state that must survive a crash: every peer blob this node
/// has reconstructed (a delta's base must be resolvable after a restart —
/// the sender's confirmed-base monotonicity argument assumes receivers
/// never forget a safely-exchanged blob), plus this node's own sent/
/// confirmed exchanges (so it keeps delta-encoding instead of regressing
/// to full blobs, and never deltas against a base the peers don't hold).
struct ExchangeDurableState {
  struct SentRecord {
    ViewId view;
    ProcessSet members;
    std::string blob;

    friend bool operator==(const SentRecord&, const SentRecord&) = default;
  };
  std::map<ProcessId, std::map<ViewId, std::string>> peer_blobs;
  std::optional<SentRecord> last_sent;
  std::optional<SentRecord> confirmed;

  friend bool operator==(const ExchangeDurableState&,
                         const ExchangeDurableState&) = default;
};

class ExchangeDvsNode {
 public:
  ExchangeDvsNode(ProcessId self, ExchangeCallbacks callbacks);

  /// The DVS callbacks to install on the underlying DvsNode.
  [[nodiscard]] DvsCallbacks dvs_callbacks(DvsNode& dvs);

  /// Client send; only legal in an established view (buffered otherwise the
  /// application would race its own recovery).
  void gpsnd(DvsNode& dvs, const ClientMsg& m);

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const std::optional<View>& view() const { return view_; }
  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] const ExchangeNodeStats& stats() const { return stats_; }

  /// Registers a collector that publishes ExchangeNodeStats as
  /// exchange.*{process="pN"} counters. The node must outlive the
  /// registry's last collect().
  std::size_t bind_metrics(obs::MetricsRegistry& metrics);

  // ----- durability (crash-restart recovery) -------------------------------

  /// Starts journaling into `store` at `key`: every reconstructed peer blob
  /// is logged *before* the exchange acts on it, and the node's own
  /// sent/confirmed exchanges are logged as they change. Writes the current
  /// durable state as the baseline snapshot. Call before any traffic (and
  /// after restore()).
  void attach_storage(storage::StableStore& store, const std::string& key);

  /// Reinstates recovered durable state after a crash-restart. The view/
  /// establishment progress resets (⊥ / not established) — the node
  /// re-enters at the next DVS-NEWVIEW's exchange with its blob histories
  /// intact. Call before any traffic.
  void restore(const ExchangeDurableState& recovered);

  /// Replays the journal at `key`; empty/absent logs yield a fresh state,
  /// corrupt tails are discarded (replay is last-writer-wins per key, so a
  /// clean prefix is always a valid — possibly older — durable state).
  [[nodiscard]] static ExchangeDurableState recover(
      const storage::StableStore& store, const std::string& key);

  /// Snapshot of the durable variables (journal compaction, tests).
  [[nodiscard]] ExchangeDurableState durable_state() const;

 private:
  void on_newview(DvsNode& dvs, const View& v);
  void on_gprcv(DvsNode& dvs, const ClientMsg& m, ProcessId from);
  void on_safe_state(const StateMsg& st, ProcessId from);
  void maybe_establish(DvsNode& dvs);
  /// Resolves a wire StateMsg to the sender's full blob (applying the delta
  /// against the stored base when needed) and records it in the per-peer
  /// history. nullopt iff a delta's base is missing (delta_unreconstructable).
  [[nodiscard]] std::optional<std::string> reconstruct_and_store(
      ProcessId from, const StateMsg& st);
  /// Journals one reconstructed peer blob (no-op when storage is detached).
  void log_peer_blob(ProcessId from, const ViewId& view,
                     const std::string& blob);
  /// Writes one WAL snapshot record of the current durable state (also the
  /// compaction step — snapshots replace the whole log).
  void snapshot_state();
  void maybe_compact();

  ProcessId self_;
  ExchangeCallbacks callbacks_;
  std::optional<View> view_;
  bool established_ = false;
  std::map<ProcessId, std::string> blobs_;
  // Delta state exchange. Sender side: the blob most recently multicast
  // (last_sent_) becomes the confirmed delta base once its safe indication
  // arrives in the same view — safe means every member of that view
  // received it, so any future view whose membership is a subset can be
  // sent just the suffix past the common prefix. Receiver side: full blob
  // contents per peer per exchange view, kept across view changes so a
  // delta's base is always resolvable; entries strictly below an observed
  // base are pruned (the sender's confirmed base is monotone).
  using SentExchange = ExchangeDurableState::SentRecord;
  std::optional<SentExchange> last_sent_;
  std::optional<SentExchange> confirmed_;
  std::map<ProcessId, std::map<ViewId, std::string>> peer_blobs_;
  // Deliveries that raced the exchange: replayed right after establishment
  // (the same deferral discipline the corrected Figure 5 uses).
  RingBuffer<std::pair<ClientMsg, ProcessId>> deferred_;
  // Client sends issued before establishment, flushed on establishment.
  RingBuffer<ClientMsg> outbox_;
  ExchangeNodeStats stats_;
  std::optional<storage::Wal> wal_;  // durable-state journal, when attached
};

}  // namespace dvs::dvsys
