#include "daemon/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace dvs::daemon {

namespace {

/// Joiner-side retry period for the state-transfer request (the donor may
/// itself still be installing the new pool view when the first one lands).
constexpr sim::Time kJoinRetryPeriod = 500 * sim::kMillisecond;

/// Snapshot chunk ceiling: comfortably under the default max_datagram with
/// room for the transfer header.
constexpr std::size_t kTransferChunk = 32 * 1024;

Bytes load_or_empty(const storage::StableStore& store,
                    const std::string& key) {
  std::optional<Bytes> v = store.load(key);
  return v.has_value() ? std::move(*v) : Bytes{};
}

/// assignments := varuint count | (varuint group, varuint r, process_id*r)*
Bytes encode_assignments(const std::vector<shard::ShardAssignment>& as) {
  Writer w;
  w.varuint(as.size());
  for (const shard::ShardAssignment& a : as) {
    w.varuint(a.group);
    w.varuint(a.replicas.size());
    for (const ProcessId p : a.replicas) w.process_id(p);
  }
  return w.take();
}

std::vector<shard::ShardAssignment> decode_assignments(const Bytes& data) {
  Reader r(data);
  std::vector<shard::ShardAssignment> as(r.varuint());
  for (shard::ShardAssignment& a : as) {
    a.group = static_cast<std::uint32_t>(r.varuint());
    a.replicas.resize(r.varuint());
    for (ProcessId& p : a.replicas) p = r.process_id();
  }
  r.expect_exhausted();
  return as;
}

sockaddr_in make_addr(const net::UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("daemon: bad IPv4 address '" + ep.host + "'");
  }
  return addr;
}

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

std::uint64_t realtime_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
}

// The pool membership group's Transport: untagged datagrams on the shared
// socket (column traffic is group-framed, transfer frames are 0x48-tagged,
// so the default-handler channel is exclusively the pool VS protocol's).
class Daemon::PoolTransport : public net::Transport {
 public:
  PoolTransport(shard::GroupMux& mux, std::size_t n)
      : mux_(mux), procs_(make_universe(n)) {}

  void attach(ProcessId p, Handler handler) override {
    mux_.attach_default(p, std::move(handler));
  }
  void send(ProcessId from, ProcessId to, const Bytes& payload) override {
    mux_.base().send(from, to, payload);
  }
  [[nodiscard]] std::size_t max_datagram_size() const override {
    return mux_.base().max_datagram_size();
  }
  [[nodiscard]] const net::NetStats& stats() const override {
    return mux_.base().stats();
  }
  [[nodiscard]] const ProcessSet& processes() const override {
    return procs_;
  }

 private:
  shard::GroupMux& mux_;
  ProcessSet procs_;
};

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  config_.validate();
  const bool sharded = config_.shards > 0;
  if (!sharded && !config_.wal_dir.empty()) {
    store_ = std::make_unique<storage::FileStableStore>(config_.wal_dir);
  }
  if (!sharded && !config_.trace_dir.empty()) {
    sink_ = std::make_unique<TraceSink>(
        TraceSink::path_for(config_.trace_dir, config_.node),
        TraceMeta{realtime_us(), config_.n, config_.initial_members(),
                  config_.node});
  }
  const net::UdpEndpoint& self_ep = config_.peers.at(config_.node);
  net::UdpConfig udp;
  udp.self = config_.node;
  udp.bind_host = self_ep.host;
  udp.bind_port = self_ep.port;
  udp.max_datagram = config_.max_datagram;
  udp.drop_probability = config_.drop;
  udp.drop_seed = config_.seed;
  transport_ =
      std::make_unique<net::UdpTransport>(udp, make_universe(config_.n));
  for (const auto& [p, ep] : config_.peers) transport_->set_peer(p, ep);

  // Control socket: same epoll instance, so one wait serves both.
  ctl_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ctl_fd_ < 0) {
    throw std::runtime_error(std::string("daemon: control socket(): ") +
                             std::strerror(errno));
  }
  sockaddr_in ctl_addr = make_addr(config_.control);
  if (::bind(ctl_fd_, reinterpret_cast<const sockaddr*>(&ctl_addr),
             sizeof(ctl_addr)) != 0) {
    const int err = errno;
    ::close(ctl_fd_);
    ctl_fd_ = -1;
    throw std::runtime_error("daemon: control bind(" +
                             config_.control.to_string() +
                             "): " + std::strerror(err));
  }
  socklen_t len = sizeof(ctl_addr);
  ::getsockname(ctl_fd_, reinterpret_cast<sockaddr*>(&ctl_addr), &len);
  control_port_ = ntohs(ctl_addr.sin_port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = ctl_fd_;
  if (::epoll_ctl(transport_->epoll_fd(), EPOLL_CTL_ADD, ctl_fd_, &ev) != 0) {
    const int err = errno;
    ::close(ctl_fd_);
    ctl_fd_ = -1;
    throw std::runtime_error(std::string("daemon: epoll_ctl(control): ") +
                             std::strerror(err));
  }

  if (sharded) {
    build_columns();
  } else {
    RuntimeOptions options;
    options.vs = config_.vs_config();
    runtime_ = std::make_unique<NodeRuntime>(
        config_.node, config_.n, config_.initial_members(), *transport_, sim_,
        options, store_.get(), sink_.get(), &realtime_us);
    runtime_->bind_metrics(metrics_);
  }
  transport_->bind_metrics(metrics_);
  t0_ns_ = monotonic_ns();
}

void Daemon::build_columns() {
  // One column per shard whose provisioned replica set contains this node.
  // All columns share the one UDP socket: GroupMux prefixes every datagram
  // with the vsys::GroupFrame header and demuxes on receive.
  mux_ = std::make_unique<shard::GroupMux>(*transport_);
  assignments_ = shard::provision(make_universe(config_.n), config_.shards,
                                  config_.replication);
  // group -> (adopted slot, handoff cursor) recovered from commit markers.
  std::map<std::uint32_t, std::pair<ProcessId, std::uint64_t>> rolled;
  if (config_.dynamic) {
    pool_store_ =
        std::make_unique<storage::FileStableStore>(config_.wal_dir + "/pool");
    // A restarted daemon must rejoin under the topology it last applied,
    // not the initial provisioning — migrated columns would otherwise be
    // misrouted until the next view change. Groups this daemon was still
    // JOINING at crash time are persisted with their pre-join row (see
    // persist_assignments), so a crash mid-transfer restarts without the
    // slot and the next pool view re-plans the move — half-written journals
    // can never masquerade as the column's established state.
    const std::optional<Bytes> stored = pool_store_->load("assignments");
    if (stored.has_value() && !stored->empty()) {
      assignments_ = decode_assignments(*stored);
    }
    // Roll-forward sweep, mirroring ShardCluster::recover_migrations: a
    // nonempty commit marker means the transferred journals were complete
    // when we crashed — adopt the slot (idempotently) instead of repeating
    // the transfer. The marker is only cleared after the column opens.
    for (shard::ShardAssignment& a : assignments_) {
      const std::string root =
          config_.wal_dir + "/g" + std::to_string(a.group);
      std::error_code ec;
      if (!std::filesystem::is_directory(root, ec)) continue;
      storage::FileStableStore gstore(root);
      for (std::size_t i = 0; i < a.replicas.size(); ++i) {
        const ProcessId slot(static_cast<std::uint32_t>(i));
        const std::optional<Bytes> meta =
            gstore.load(shard::transfer_stage_key(slot, "meta"));
        if (!meta.has_value() || meta->empty()) continue;
        Reader r(*meta);
        const std::uint64_t next = r.varuint();
        r.expect_exhausted();
        a.replicas[i] = config_.node;
        rolled[a.group] = {slot, next};
      }
    }
    if (!rolled.empty()) persist_assignments();
  }
  router_ = shard::ShardRouter(config_.shards);
  router_.set_assignments(assignments_);
  // Contact resolution starts from the full universe; with a pool
  // membership group it is refreshed from every live view installed
  // (apply_pool_view), so clients chase replicas that actually answer.
  router_.set_pool_view(make_universe(config_.n));
  for (const shard::ShardAssignment& a : assignments_) {
    if (!router_.hosts(a.group, config_.node)) continue;
    const auto it = rolled.find(a.group);
    open_column(a, it == rolled.end() ? 0 : it->second.second);
  }
  // Markers clear only after their columns opened: a crash anywhere above
  // re-runs the (idempotent) roll-forward.
  for (const auto& [group, h] : rolled) {
    storage::FileStableStore gstore(config_.wal_dir + "/g" +
                                    std::to_string(group));
    gstore.replace(shard::transfer_stage_key(h.first, "meta"), Bytes{});
  }
  if (config_.dynamic) {
    mux_->set_transfer_handler(
        config_.node, [this](ProcessId from, const shard::TransferFrame& f) {
          handle_transfer(from, f);
        });
    build_pool_group();
  }
}

Daemon::Column& Daemon::open_column(const shard::ShardAssignment& a,
                                    std::uint64_t handoff_next) {
  auto col = std::make_unique<Column>();
  col->group = a.group;
  col->port = &mux_->open(a.group, a.replicas);
  col->local = col->port->to_local(config_.node);
  const std::size_t r = a.replicas.size();
  if (!config_.wal_dir.empty()) {
    // Per-column WAL root: shard-local ids repeat across groups, so the
    // columns must not share one journal namespace.
    col->store = std::make_unique<storage::FileStableStore>(
        config_.wal_dir + "/g" + std::to_string(a.group));
  }
  if (!config_.trace_dir.empty()) {
    col->sink = std::make_unique<TraceSink>(
        TraceSink::path_for(config_.trace_dir, config_.node, a.group),
        TraceMeta{realtime_us(), r, r, col->local, a.group});
  }
  RuntimeOptions options;
  options.vs = config_.vs_config();
  col->runtime = std::make_unique<NodeRuntime>(
      col->local, r, r, *col->port, sim_, options, col->store.get(),
      col->sink.get(), &realtime_us);
  // A column opened over transferred journals adopts the donor's delivery
  // cursor: CRASH (recorded by the recovering constructor) then HANDOFF
  // tell the offline auditor the new incarnation may re-deliver the
  // donor's tail but can never invent order.
  if (handoff_next != 0) col->runtime->note_handoff(handoff_next);
  col->runtime->bind_metrics(col->metrics);
  columns_.push_back(std::move(col));
  return *columns_.back();
}

void Daemon::build_pool_group() {
  pool_net_ = std::make_unique<PoolTransport>(*mux_, config_.n);
  const std::string key = "pool/" + config_.node.to_string() + "/vs";
  const bool recovered = pool_store_->load(key).has_value();
  vsys::VsCallbacks cb;
  cb.on_newview = [this](const View& v) { apply_pool_view(v); };
  const View pool_v0{ViewId::initial(), make_universe(config_.n)};
  pool_vs_ = std::make_unique<vsys::VsNode>(
      config_.node,
      recovered ? std::nullopt : std::optional<View>{pool_v0}, *pool_net_,
      sim_, config_.vs_config(), std::move(cb));
  if (recovered) {
    pool_vs_->restore_epoch(vsys::VsNode::recover_epoch(*pool_store_, key));
  }
  pool_vs_->attach_storage(*pool_store_, key);
}

void Daemon::apply_pool_view(const View& view) {
  router_.set_pool_view(view.set());
  // Same planning function as the simulated ShardCluster: every daemon sees
  // the same totally-ordered sequence of pool views (that is what the
  // membership service provides), computes the same diff and converges on
  // the same map without any coordinator.
  const shard::ReprovisionPlan plan =
      shard::plan_reprovision(assignments_, view.set());
  if (!plan.empty()) {
    const std::vector<shard::ShardAssignment> installed = assignments_;
    assignments_ = shard::apply_plan(assignments_, plan);
    router_.set_assignments(assignments_);
    for (const shard::GroupMigration& gm : plan.migrations) {
      for (const shard::SlotMove& mv : gm.moves) {
        ++migrations_;
        Column* col = column_for(gm.group);
        if (mv.to == config_.node) {
          // We are the joiner: bootstrap the column from the donor replica.
          const ProcessId donor =
              assignments_[gm.group - 1].replicas[gm.source_slot.value()];
          start_join(gm.group, mv.slot, donor, installed[gm.group - 1]);
        } else if (col != nullptr) {
          if (col->local == mv.slot) {
            // The slot WE host migrated away: the pool view declared us dead
            // (we were partitioned or slow) and a survivor re-homed it. Our
            // incarnation is superseded — tear the column down.
            teardown_column(gm.group);
          } else {
            // Survivor: re-point the departed slot at its new host.
            col->port->remap(mv.slot, mv.to);
          }
        }
      }
    }
    // Persist AFTER the joins are recorded: persist_assignments masks every
    // group whose transfer is still in flight with its pre-plan row, so a
    // joiner crash before the install commits rolls the slot back.
    persist_assignments();
  }
  // Joins stranded by this view: a donor that departed mid-transfer will
  // never answer, and the slot would stay unhosted forever (we ARE its
  // recorded host, so no later plan re-homes it). Adopt the lowest-id
  // surviving replica as the new donor; the retry timer re-requests with a
  // fresh episode. With no survivor left, keep the old donor — it may
  // crash-restart with its journals intact (the `lost` column case).
  for (auto& [group, join] : joins_) {
    if (view.set().contains(join.donor)) continue;
    bool found = false;
    ProcessId best{};
    for (const ProcessId p : assignments_[group - 1].replicas) {
      if (p == config_.node || !view.set().contains(p)) continue;
      if (!found || p < best) {
        best = p;
        found = true;
      }
    }
    if (found) join.donor = best;
  }
}

void Daemon::start_join(std::uint32_t group, ProcessId slot, ProcessId donor,
                        const shard::ShardAssignment& prior) {
  const auto [it, inserted] = joins_.try_emplace(group);
  // On an overwrite (the group's join superseded by a newer plan) the
  // original pre-join row stays: it is the last state that durably
  // committed, and the superseded episode's chunks are quarantined so they
  // can never complete the new assembly.
  if (inserted) it->second.prior = prior;
  it->second.slot = slot;
  it->second.donor = donor;
  it->second.assembler.expect(xfer_episode_ + 1);
  // The retry timer of a superseded join is still armed and picks up the
  // new donor/slot; only a fresh join needs one started.
  if (inserted) request_join(group);
}

void Daemon::request_join(std::uint32_t group) {
  const auto it = joins_.find(group);
  if (it == joins_.end()) return;  // completed (or superseded) — stop retrying
  shard::TransferFrame req;
  req.kind = shard::TransferKind::kRequest;
  req.group = group;
  req.slot = it->second.slot.value();
  req.episode = ++xfer_episode_;
  mux_->send_transfer(config_.node, it->second.donor, req);
  sim_.schedule_at(sim_.now() + kJoinRetryPeriod,
                   [this, group] { request_join(group); });
}

void Daemon::handle_transfer(ProcessId from,
                             const shard::TransferFrame& frame) {
  if (frame.kind == shard::TransferKind::kRequest) {
    // Donor side: serve our own column journals. The departed slot's disk
    // is unreachable, so the joiner adopts the requested slot with OUR
    // prefix of the total order — exactly the EvHandoff contract (it may
    // re-deliver the departed replica's tail, it cannot invent order).
    Column* col = column_for(frame.group);
    if (col == nullptr || col->store == nullptr) return;
    shard::SlotSnapshot snap;
    snap.vs =
        load_or_empty(*col->store, NodeRuntime::storage_key(col->local, "vs"));
    snap.dvs = load_or_empty(*col->store,
                             NodeRuntime::storage_key(col->local, "dvs"));
    snap.to =
        load_or_empty(*col->store, NodeRuntime::storage_key(col->local, "to"));
    snap.next = col->runtime->to().automaton().nextreport();
    const Bytes encoded = shard::encode_snapshot(snap);
    for (const shard::TransferFrame& chunk :
         shard::chunk_snapshot(frame.group, frame.slot, frame.episode,
                               encoded, kTransferChunk)) {
      mux_->send_transfer(config_.node, from, chunk);
    }
    return;
  }
  // Snapshot chunk: only meaningful while this group's join is in flight,
  // and only from the donor we asked, for the slot we are adopting — a
  // superseded episode's chunks (or a confused peer's) must never complete
  // the assembly under the wrong slot's keys.
  const auto it = joins_.find(frame.group);
  if (it == joins_.end()) return;
  if (frame.slot != it->second.slot.value() || from != it->second.donor) {
    return;
  }
  if (it->second.assembler.add(frame)) {
    finish_join(frame.group, it->second.assembler.take());
  }
}

void Daemon::finish_join(std::uint32_t group, const Bytes& encoded) {
  const auto it = joins_.find(group);
  const ProcessId slot = it->second.slot;
  shard::SlotSnapshot snap;
  try {
    snap = shard::decode_snapshot(encoded);
  } catch (const DecodeError&) {
    // Corrupt assembly: quarantine every episode requested so far (its
    // duplicates must not re-complete) and keep the join alive — the retry
    // timer asks the donor again with a fresh episode. Erasing the entry
    // here would strand the slot: we are already its recorded host, so no
    // later pool view would re-plan the move.
    it->second.assembler.expect(xfer_episode_ + 1);
    return;
  }
  // Install mirrors ShardCluster::migrate_slot's episode discipline. All
  // three journals are written unconditionally — if this host ever held
  // this slot before, a stale journal for a layer the donor never wrote
  // must not leak into the adopted state. The commit marker (with the
  // donor's handoff cursor) then flips a crash from roll-back (re-plan and
  // re-transfer) to roll-forward (build_columns adopts the slot from the
  // completed journals); only after it do the durable assignments commit.
  storage::FileStableStore store(config_.wal_dir + "/g" +
                                 std::to_string(group));
  store.replace(NodeRuntime::storage_key(slot, "vs"), snap.vs);
  store.replace(NodeRuntime::storage_key(slot, "dvs"), snap.dvs);
  store.replace(NodeRuntime::storage_key(slot, "to"), snap.to);
  Writer w;
  w.varuint(snap.next);
  store.replace(shard::transfer_stage_key(slot, "meta"), w.take());
  joins_.erase(group);
  persist_assignments();  // unmasked now: this group's row is durable
  // Open the column over the installed journals: NodeRuntime's recovery
  // path rebuilds the stack (and records EvCrash), replay_kv rebuilds the
  // application state, and open_column records the HANDOFF.
  Column& col = open_column(assignments_[group - 1], snap.next);
  col.runtime->start();
  // Episode complete: clearing the marker is LAST (ShardCluster order).
  store.replace(shard::transfer_stage_key(slot, "meta"), Bytes{});
}

void Daemon::teardown_column(std::uint32_t group) {
  for (auto it = columns_.begin(); it != columns_.end(); ++it) {
    if ((*it)->group != group) continue;
    // Close + fsync the trace sink BEFORE dropping the column: the sink
    // holds one descriptor per column, and a daemon that cycles through
    // many false-suspicion teardowns must not accumulate them. The fsync
    // makes the final records durable before the slot's new host writes
    // its own incarnation of the history.
    if ((*it)->sink != nullptr) (*it)->sink->close();
    columns_.erase(it);  // destroys the runtime before its port goes away
    mux_->close(group);
    return;
  }
}

void Daemon::persist_assignments() {
  if (pool_store_ == nullptr) return;
  // Groups whose state transfer is still in flight are masked with their
  // pre-join row: until the journals and the commit marker are durable, a
  // restart must NOT believe this node hosts the slot (build_columns would
  // open the column over empty journals and silently restart the shard's
  // history). The masked row names a departed host, so the next pool view
  // re-plans the move and the transfer simply runs again.
  std::vector<shard::ShardAssignment> durable = assignments_;
  for (const auto& [group, join] : joins_) durable[group - 1] = join.prior;
  pool_store_->replace("assignments", encode_assignments(durable));
}

Daemon::Column* Daemon::column_for(std::uint32_t group) {
  for (const std::unique_ptr<Column>& c : columns_) {
    if (c->group == group) return c.get();
  }
  return nullptr;
}

Daemon::~Daemon() {
  if (ctl_fd_ >= 0) ::close(ctl_fd_);
}

std::uint64_t Daemon::elapsed_us() const {
  return (monotonic_ns() - t0_ns_) / 1000ULL;
}

int Daemon::run(const volatile std::sig_atomic_t* stop) {
  if (runtime_ != nullptr) runtime_->start();
  for (const std::unique_ptr<Column>& c : columns_) c->runtime->start();
  if (pool_vs_ != nullptr) pool_vs_->start();
  epoll_event events[8];
  while (!quit_ && (stop == nullptr || *stop == 0)) {
    // Fire every timer due by now; the callbacks may send.
    sim_.run_until(elapsed_us());
    transport_->flush();
    // Sleep until the next timer or the next datagram, whichever first.
    // The 50ms cap bounds the reaction time to signals.
    int timeout_ms = 50;
    if (const auto next = sim_.next_event_time(); next.has_value()) {
      const sim::Time now = sim_.now();
      const sim::Time wait = *next > now ? *next - now : 0;
      timeout_ms = static_cast<int>(
          std::min<sim::Time>((wait + 999) / 1000, 50));
    }
    const int n = ::epoll_wait(transport_->epoll_fd(), events, 8, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks *stop
      return 1;
    }
    // Advance simulated time to the arrival instant before dispatching, so
    // handlers scheduling relative timers see the true now().
    sim_.run_until(elapsed_us());
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == transport_->socket_fd()) {
        transport_->drain();
      } else if (events[i].data.fd == ctl_fd_) {
        handle_control();
      }
    }
    transport_->flush();
  }
  transport_->flush();
  return 0;
}

void Daemon::handle_control() {
  char buf[4096];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(ctl_fd_, buf, sizeof(buf) - 1, 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: queue drained
    }
    std::string command(buf, static_cast<std::size_t>(n));
    while (!command.empty() &&
           (command.back() == '\n' || command.back() == '\r' ||
            command.back() == ' ')) {
      command.pop_back();
    }
    const std::string reply = execute(command);
    (void)::sendto(ctl_fd_, reply.data(), reply.size(), 0,
                   reinterpret_cast<const sockaddr*>(&src), src_len);
  }
}

std::string Daemon::execute(const std::string& command) {
  const bool sharded = !columns_.empty();
  std::istringstream is(command);
  std::string op;
  is >> op;
  if (op == "ping") {
    bool recovered = runtime_ != nullptr && runtime_->recovered();
    for (const std::unique_ptr<Column>& c : columns_) {
      recovered = recovered || c->runtime->recovered();
    }
    return "pong " + config_.node.to_string() +
           " pid=" + std::to_string(::getpid()) +
           " recovered=" + (recovered ? "1" : "0");
  }
  // In a sharded deployment every keyed op routes through the ShardRouter;
  // a node that does not host the key's shard answers with a redirect the
  // client (cluster.sh) can follow instead of silently writing into the
  // wrong totally-ordered stream.
  const auto route = [&](const std::string& key) -> std::pair<Column*, std::string> {
    if (!sharded) return {nullptr, ""};
    const std::uint32_t k = router_.shard_of(key);
    Column* col = column_for(k);
    if (col != nullptr) return {col, ""};
    const ProcessId contact = router_.contact(k, config_.node);
    return {nullptr, "moved shard=" + std::to_string(k) +
                         " node=" + std::to_string(contact.value())};
  };
  if (op == "put") {
    std::string key, value;
    if (!(is >> key >> value)) return "err usage: put <key> <value>";
    if (sharded) {
      const auto [col, moved] = route(key);
      if (col == nullptr) return moved;
      const std::uint64_t uid =
          col->runtime->bcast_command("put " + key + " " + value);
      return "ok uid=" + std::to_string(uid) +
             " shard=" + std::to_string(col->group);
    }
    const std::uint64_t uid =
        runtime_->bcast_command("put " + key + " " + value);
    return "ok uid=" + std::to_string(uid);
  }
  if (op == "del") {
    std::string key;
    if (!(is >> key)) return "err usage: del <key>";
    if (sharded) {
      const auto [col, moved] = route(key);
      if (col == nullptr) return moved;
      const std::uint64_t uid = col->runtime->bcast_command("del " + key);
      return "ok uid=" + std::to_string(uid) +
             " shard=" + std::to_string(col->group);
    }
    const std::uint64_t uid = runtime_->bcast_command("del " + key);
    return "ok uid=" + std::to_string(uid);
  }
  if (op == "get") {
    std::string key;
    if (!(is >> key)) return "err usage: get <key>";
    if (sharded) {
      const auto [col, moved] = route(key);
      if (col == nullptr) return moved;
      if (!col->runtime->kv().data().contains(key)) return "(nil)";
      return col->runtime->kv().get(key);
    }
    if (!runtime_->kv().data().contains(key)) return "(nil)";
    return runtime_->kv().get(key);
  }
  if (op == "dump") {
    if (!sharded) return runtime_->kv().snapshot();
    std::string out;
    for (const std::unique_ptr<Column>& c : columns_) {
      out += "g" + std::to_string(c->group) + "\n" + c->runtime->kv().snapshot();
    }
    return out;
  }
  if (op == "digest") {
    std::ostringstream os;
    if (sharded) {
      for (const std::unique_ptr<Column>& c : columns_) {
        os << "g" << c->group << " digest=" << std::hex
           << c->runtime->kv().digest() << std::dec
           << " applied=" << c->runtime->kv().applied() << "\n";
      }
      return os.str();
    }
    os << "digest=" << std::hex << runtime_->kv().digest() << std::dec
       << " applied=" << runtime_->kv().applied();
    return os.str();
  }
  if (op == "applied") {
    if (!sharded) return std::to_string(runtime_->kv().applied());
    std::uint64_t total = 0;
    for (const std::unique_ptr<Column>& c : columns_) {
      total += c->runtime->kv().applied();
    }
    return std::to_string(total);
  }
  if (op == "view") {
    const auto one = [](NodeRuntime& rt) -> std::string {
      const std::optional<View>& v = rt.vs().view();
      if (!v.has_value()) return "no-view";
      return "view=" + v->to_string() +
             " primary=" + (rt.dvs().in_primary() ? "1" : "0");
    };
    if (!sharded) return one(*runtime_);
    std::string out;
    for (const std::unique_ptr<Column>& c : columns_) {
      out += "g" + std::to_string(c->group) + " " + one(*c->runtime) + "\n";
    }
    return out;
  }
  if (op == "stats") {
    obs::MetricsSnapshot out = metrics_.snapshot();
    // Same shape as ShardCluster::metrics_snapshot(): per-column metrics
    // under shard.<k>.*, pool-level counter/gauge rollups under pool.*.
    // Frames for groups nobody here opened mean the peers disagree about
    // the shard topology — surfaced as its own counter.
    if (mux_) out.counters["shard.unroutable"] = mux_->unroutable();
    if (sharded) {
      out.counters["pool.migrations"] = migrations_;
      out.counters["pool.router_re_resolutions"] = router_.re_resolutions();
    }
    for (const std::unique_ptr<Column>& c : columns_) {
      const std::string prefix = "shard." + std::to_string(c->group) + ".";
      const obs::MetricsSnapshot s = c->metrics.snapshot();
      for (const auto& [key, v] : s.counters) {
        out.counters[prefix + key] = v;
        out.counters["pool." + key] += v;
      }
      for (const auto& [key, v] : s.gauges) {
        out.gauges[prefix + key] = v;
        out.gauges["pool." + key] += v;
      }
      for (const auto& [key, v] : s.histograms) out.histograms[prefix + key] = v;
    }
    return out.to_prometheus();
  }
  if (op == "drop") {
    double p = 0.0;
    if (!(is >> p) || p < 0.0 || p > 1.0) {
      return "err usage: drop <probability in [0,1]>";
    }
    transport_->set_drop_probability(p);
    return "ok";
  }
  if (op == "fds") {
    // Open-descriptor count straight from the kernel; the dvsd system test
    // asserts column teardown does not leak trace/WAL descriptors.
    std::size_t count = 0;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator("/proc/self/fd", ec)) {
      (void)entry;
      ++count;
    }
    if (ec) return "err cannot read /proc/self/fd";
    return std::to_string(count);
  }
  if (op == "shardmap") {
    if (!sharded) return "err unsharded deployment";
    std::ostringstream os;
    for (const shard::ShardAssignment& a : assignments_) {
      os << "g" << a.group;
      for (const ProcessId p : a.replicas) os << " " << p.value();
      os << "\n";
    }
    os << "migrations=" << migrations_ << "\n";
    return os.str();
  }
  if (op == "quit") {
    quit_ = true;
    return "ok";
  }
  return "err unknown command '" + op + "'";
}

}  // namespace dvs::daemon
