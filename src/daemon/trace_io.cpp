#include "daemon/trace_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <type_traits>

#include "storage/wal.h"

namespace dvs::daemon {

namespace {

// Group-event tags (VS and DVS share the layout; only the message type
// differs).
constexpr std::uint8_t kTagGpsnd = 1;
constexpr std::uint8_t kTagGprcv = 2;
constexpr std::uint8_t kTagSafe = 3;
constexpr std::uint8_t kTagNewview = 4;
constexpr std::uint8_t kTagRegister = 5;
// TO-event tags.
constexpr std::uint8_t kTagBcast = 1;
constexpr std::uint8_t kTagBrcv = 2;
constexpr std::uint8_t kTagCrash = 3;
constexpr std::uint8_t kTagHandoff = 4;

void put_msg(Writer& w, const Msg& m) { w.msg(m); }
void put_msg(Writer& w, const ClientMsg& m) { w.client_msg(m); }

template <typename MsgT>
MsgT get_msg(Reader& r) {
  if constexpr (std::is_same_v<MsgT, Msg>) {
    return r.msg();
  } else {
    return r.client_msg();
  }
}

template <typename MsgT>
void encode_group(Writer& w, const spec::GroupEvent<MsgT>& event) {
  struct Visitor {
    Writer& w;
    void operator()(const spec::EvGpsnd<MsgT>& ev) const {
      w.u8(kTagGpsnd);
      w.process_id(ev.p);
      put_msg(w, ev.m);
    }
    void operator()(const spec::EvGprcv<MsgT>& ev) const {
      w.u8(kTagGprcv);
      w.process_id(ev.sender);
      w.process_id(ev.receiver);
      put_msg(w, ev.m);
    }
    void operator()(const spec::EvSafe<MsgT>& ev) const {
      w.u8(kTagSafe);
      w.process_id(ev.sender);
      w.process_id(ev.receiver);
      put_msg(w, ev.m);
    }
    void operator()(const spec::EvNewview& ev) const {
      w.u8(kTagNewview);
      w.process_id(ev.p);
      w.view(ev.v);
    }
    void operator()(const spec::EvRegister& ev) const {
      w.u8(kTagRegister);
      w.process_id(ev.p);
    }
  };
  std::visit(Visitor{w}, event);
}

template <typename MsgT>
spec::GroupEvent<MsgT> decode_group(Reader& r) {
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kTagGpsnd: {
      const ProcessId p = r.process_id();
      return spec::EvGpsnd<MsgT>{p, get_msg<MsgT>(r)};
    }
    case kTagGprcv: {
      const ProcessId sender = r.process_id();
      const ProcessId receiver = r.process_id();
      return spec::EvGprcv<MsgT>{sender, receiver, get_msg<MsgT>(r)};
    }
    case kTagSafe: {
      const ProcessId sender = r.process_id();
      const ProcessId receiver = r.process_id();
      return spec::EvSafe<MsgT>{sender, receiver, get_msg<MsgT>(r)};
    }
    case kTagNewview: {
      const ProcessId p = r.process_id();
      return spec::EvNewview{p, r.view()};
    }
    case kTagRegister:
      return spec::EvRegister{r.process_id()};
    default:
      throw DecodeError("unknown group-event tag " + std::to_string(tag));
  }
}

Bytes slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  Bytes bytes(raw.size());
  std::transform(raw.begin(), raw.end(), bytes.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return bytes;
}

TraceMeta decode_meta(Reader& r) {
  TraceMeta meta;
  meta.ts_us = r.u64();
  meta.n = static_cast<std::size_t>(r.varuint());
  meta.initial_members = static_cast<std::size_t>(r.varuint());
  meta.self = r.process_id();
  // Pre-shard metas end here; sharded ones append the group id.
  if (!r.exhausted()) meta.group = static_cast<std::uint32_t>(r.varuint());
  return meta;
}

}  // namespace

void encode_event(Writer& w, const spec::VsEvent& event) {
  encode_group<Msg>(w, event);
}
void encode_event(Writer& w, const spec::DvsEvent& event) {
  encode_group<ClientMsg>(w, event);
}

void encode_event(Writer& w, const spec::ToEvent& event) {
  struct Visitor {
    Writer& w;
    void operator()(const spec::EvBcast& ev) const {
      w.u8(kTagBcast);
      w.process_id(ev.p);
      w.app_msg(ev.a);
    }
    void operator()(const spec::EvBrcv& ev) const {
      w.u8(kTagBrcv);
      w.process_id(ev.sender);
      w.process_id(ev.receiver);
      w.app_msg(ev.a);
    }
    void operator()(const spec::EvCrash& ev) const {
      w.u8(kTagCrash);
      w.process_id(ev.p);
    }
    void operator()(const spec::EvHandoff& ev) const {
      w.u8(kTagHandoff);
      w.process_id(ev.p);
      w.varuint(ev.next);
    }
  };
  std::visit(Visitor{w}, event);
}

spec::VsEvent decode_vs_event(Reader& r) { return decode_group<Msg>(r); }
spec::DvsEvent decode_dvs_event(Reader& r) {
  return decode_group<ClientMsg>(r);
}

spec::ToEvent decode_to_event(Reader& r) {
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kTagBcast: {
      const ProcessId p = r.process_id();
      return spec::EvBcast{p, r.app_msg()};
    }
    case kTagBrcv: {
      const ProcessId sender = r.process_id();
      const ProcessId receiver = r.process_id();
      return spec::EvBrcv{sender, receiver, r.app_msg()};
    }
    case kTagCrash:
      return spec::EvCrash{r.process_id()};
    case kTagHandoff: {
      const ProcessId p = r.process_id();
      return spec::EvHandoff{p, r.varuint()};
    }
    default:
      throw DecodeError("unknown TO-event tag " + std::to_string(tag));
  }
}

// ----- TraceSink ------------------------------------------------------------

std::string TraceSink::path_for(const std::string& trace_dir, ProcessId p) {
  return trace_dir + "/" + p.to_string() + ".trace";
}

std::string TraceSink::path_for(const std::string& trace_dir, ProcessId p,
                                std::uint32_t group) {
  if (group == 0) return path_for(trace_dir, p);
  return trace_dir + "/" + p.to_string() + ".g" + std::to_string(group) +
         ".trace";
}

TraceSink::TraceSink(std::string path, const TraceMeta& meta)
    : path_(std::move(path)) {
  namespace fs = std::filesystem;
  const fs::path p(path_);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  // A SIGKILLed predecessor may have torn its last record; appending after
  // a torn tail would hide every later record from read_wal's clean-prefix
  // scan, so trim the file to the verified prefix first.
  if (fs::exists(p)) {
    const Bytes existing = slurp(path_);
    const storage::WalContents contents = storage::read_wal(existing);
    if (contents.bytes_consumed < existing.size()) {
      fs::resize_file(p, contents.bytes_consumed);
      trimmed_ = true;
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) throw std::runtime_error("trace: cannot append to " + path_);
  const TraceMeta m = meta;
  append(kTraceMeta, [&m](Writer& w) {
    w.u64(m.ts_us);
    w.varuint(m.n);
    w.varuint(m.initial_members);
    w.process_id(m.self);
    // Trailing group id only when sharded: unsharded files stay
    // byte-identical to the pre-shard format.
    if (m.group != 0) w.varuint(m.group);
  });
}

void TraceSink::close() {
  if (!out_.is_open()) return;
  out_.flush();
  out_.close();
  // std::ofstream exposes no descriptor; reopen read-only purely to fsync
  // the data out of the page cache before the slot's new host takes over.
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

void TraceSink::append(std::uint8_t type,
                       const std::function<void(Writer&)>& encode) {
  if (!out_.is_open()) return;
  const Bytes frame = storage::Wal::frame(type, encode);
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  // Hand the record to the kernel now: the page cache survives SIGKILL, so
  // an acknowledged record can only be lost with the whole machine.
  out_.flush();
  ++records_;
}

void TraceSink::record(std::uint64_t ts_us, const spec::VsEvent& event) {
  append(kTraceVs, [ts_us, &event](Writer& w) {
    w.u64(ts_us);
    encode_event(w, event);
  });
}

void TraceSink::record(std::uint64_t ts_us, const spec::DvsEvent& event) {
  append(kTraceDvs, [ts_us, &event](Writer& w) {
    w.u64(ts_us);
    encode_event(w, event);
  });
}

void TraceSink::record(std::uint64_t ts_us, const spec::ToEvent& event) {
  append(kTraceTo, [ts_us, &event](Writer& w) {
    w.u64(ts_us);
    encode_event(w, event);
  });
}

// ----- load side ------------------------------------------------------------

ProcessTrace load_trace_file(const std::string& path) {
  ProcessTrace trace;
  trace.path = path;
  const Bytes raw = slurp(path);
  const storage::WalContents contents = storage::read_wal(raw);
  trace.corrupt_tail = contents.corrupt_tail;
  for (const storage::WalRecord& rec : contents.records) {
    try {
      Reader r(rec.payload);
      if (rec.type == kTraceMeta) {
        trace.metas.push_back(decode_meta(r));
        r.expect_exhausted();
        continue;
      }
      TracedEvent ev;
      ev.ts_us = r.u64();
      ev.layer = rec.type;
      switch (rec.type) {
        case kTraceVs:
          ev.event = decode_vs_event(r);
          break;
        case kTraceDvs:
          ev.event = decode_dvs_event(r);
          break;
        case kTraceTo:
          ev.event = decode_to_event(r);
          break;
        default:
          ++trace.undecodable;  // unknown record type: skip, keep reading
          continue;
      }
      r.expect_exhausted();
      trace.events.push_back(std::move(ev));
    } catch (const DecodeError&) {
      ++trace.undecodable;
    }
  }
  return trace;
}

std::vector<ProcessTrace> load_trace_dir(const std::string& trace_dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(trace_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".trace") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ProcessTrace> traces;
  traces.reserve(paths.size());
  for (const std::string& p : paths) traces.push_back(load_trace_file(p));
  return traces;
}

}  // namespace dvs::daemon
