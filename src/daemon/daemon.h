// Daemon: one dvsd OS process — a full VS/DVS/TO node over real UDP.
//
// The protocol stack was written against sim::Simulator's virtual clock;
// the daemon reuses it unmodified by driving the simulator from the wall
// clock: simulated time is defined as "microseconds since daemon start"
// (CLOCK_MONOTONIC), the event loop advances the simulator to the current
// elapsed time before and after every socket wait, and the epoll timeout
// is bounded by the next pending timer so heartbeats fire on schedule.
// Everything stays single-threaded: timer callbacks, datagram handlers
// and control commands all run on the loop thread, exactly like in the
// simulator.
//
// A UDP control socket accepts one-datagram text commands (cluster.sh and
// the system tests drive workloads through it):
//
//   ping                 -> "pong <self> pid=<pid>"
//   put <key> <value...> -> broadcasts "put k v", replies "ok uid=<uid>"
//   del <key>            -> broadcasts "del k",   replies "ok uid=<uid>"
//   get <key>            -> the local replica's value, or "(nil)"
//   dump                 -> KvStateMachine::snapshot()
//   digest               -> "digest=<hex> applied=<n>"
//   view                 -> "view=<id> members=<k> primary=<0|1>" | "no-view"
//   stats                -> metrics snapshot (Prometheus-style text)
//   drop <probability>   -> sets the UDP send-drop knob, replies "ok"
//   fds                  -> open file descriptor count (fd-leak checks)
//   shardmap             -> current assignments: "g<k> <pool ids...>" per
//                           shard plus "migrations=<n>" (dynamic mode)
//   quit                 -> replies "ok", exits the loop gracefully
//
// Shutdown: `quit`, SIGTERM or SIGINT end the loop after the current
// iteration; traces and WALs are already on the kernel side at every
// point (the sink flushes per record), so SIGKILL loses at most the one
// record being written — which the CRC framing turns into a clean torn
// tail for the next incarnation and the auditor.
#pragma once

#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "daemon/config.h"
#include "daemon/runtime.h"
#include "net/udp_transport.h"
#include "obs/metrics.h"
#include "shard/group_mux.h"
#include "shard/provision.h"
#include "shard/reprovision.h"
#include "shard/router.h"
#include "sim/simulator.h"
#include "storage/file_store.h"
#include "vsys/vs_node.h"

namespace dvs::daemon {

class Daemon {
 public:
  /// Opens sockets, storage and trace sink; builds (and, when the WAL dir
  /// already holds journals, recovers) the node. Throws on setup errors.
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Runs the event loop until `quit` or until *stop becomes nonzero
  /// (signal handlers set it). Returns the process exit code.
  int run(const volatile std::sig_atomic_t* stop = nullptr);

  /// The unsharded deployment's single column (throws when shards > 0 —
  /// use column()/columns() then).
  [[nodiscard]] NodeRuntime& runtime() { return *runtime_; }
  [[nodiscard]] net::UdpTransport& transport() { return *transport_; }
  /// The control socket's bound port (the config may say port 0 in tests).
  [[nodiscard]] std::uint16_t control_port() const { return control_port_; }

  /// One shard column this daemon hosts (shards > 0 only). A node hosts a
  /// column for every shard whose provisioned replica set contains it.
  struct Column {
    std::uint32_t group = 0;
    ProcessId local{};  // shard-local id of this node within the column
    shard::GroupMux::Port* port = nullptr;
    std::unique_ptr<storage::FileStableStore> store;
    std::unique_ptr<TraceSink> sink;
    std::unique_ptr<NodeRuntime> runtime;
    obs::MetricsRegistry metrics;
  };
  [[nodiscard]] const std::vector<std::unique_ptr<Column>>& columns() const {
    return columns_;
  }

  /// The current shard map (initial provisioning plus every migration this
  /// daemon has applied from pool view changes).
  [[nodiscard]] const std::vector<shard::ShardAssignment>& assignments()
      const {
    return assignments_;
  }
  /// Column slot migrations this daemon has observed (dynamic mode).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

 private:
  /// Untagged-datagram Transport view of the shared socket — the pool
  /// membership group's wire (defined in daemon.cpp).
  class PoolTransport;

  /// One joiner bootstrap in flight: the transfer request retries until the
  /// donor's snapshot chunks assemble, then the column opens over them. The
  /// entry survives a failed install (the retry timer re-requests) and is
  /// only erased once the transferred journals are durably committed.
  struct PendingJoin {
    ProcessId slot{};   // shard-local id we are adopting
    ProcessId donor{};  // pool id serving the snapshot
    /// The group's assignment row BEFORE the plan adopted us: persisted in
    /// place of the live row until the transfer commits, so a joiner that
    /// crashes mid-transfer restarts without the slot (and the next pool
    /// view re-plans the move) instead of serving an empty column.
    shard::ShardAssignment prior;
    shard::SnapshotAssembler assembler;
  };

  void build_columns();
  Column& open_column(const shard::ShardAssignment& a,
                      std::uint64_t handoff_next);
  void build_pool_group();
  void apply_pool_view(const View& view);
  void start_join(std::uint32_t group, ProcessId slot, ProcessId donor,
                  const shard::ShardAssignment& prior);
  void request_join(std::uint32_t group);
  void finish_join(std::uint32_t group, const Bytes& encoded);
  void handle_transfer(ProcessId from, const shard::TransferFrame& frame);
  void teardown_column(std::uint32_t group);
  void persist_assignments();
  [[nodiscard]] Column* column_for(std::uint32_t group);
  void handle_control();
  [[nodiscard]] std::string execute(const std::string& command);
  [[nodiscard]] std::uint64_t elapsed_us() const;

  DaemonConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::UdpTransport> transport_;
  std::unique_ptr<storage::FileStableStore> store_;
  std::unique_ptr<TraceSink> sink_;
  std::unique_ptr<NodeRuntime> runtime_;
  std::unique_ptr<shard::GroupMux> mux_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<shard::ShardAssignment> assignments_;
  shard::ShardRouter router_{1};  // rebuilt with K in build_columns()
  // Dynamic re-provisioning (config.dynamic): the pool membership group and
  // the in-flight joiner bootstraps.
  std::unique_ptr<PoolTransport> pool_net_;
  std::unique_ptr<storage::FileStableStore> pool_store_;
  std::unique_ptr<vsys::VsNode> pool_vs_;
  std::map<std::uint32_t, PendingJoin> joins_;
  /// Transfer-request nonce, monotone across every join this daemon runs:
  /// each kRequest gets a fresh episode so the assembler can tell two donor
  /// answers apart (and discard superseded ones).
  std::uint32_t xfer_episode_ = 0;
  std::uint64_t migrations_ = 0;
  obs::MetricsRegistry metrics_;
  int ctl_fd_ = -1;
  std::uint16_t control_port_ = 0;
  std::uint64_t t0_ns_ = 0;
  bool quit_ = false;
};

/// Wall-clock microseconds (CLOCK_REALTIME) — the trace timestamp domain
/// shared by every process on the host.
[[nodiscard]] std::uint64_t realtime_us();

}  // namespace dvs::daemon
