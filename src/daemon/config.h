// dvsd configuration: one node of a real multi-process deployment.
//
// A deployment is n OS processes, each running the full VS/DVS/TO stack
// over a UdpTransport (src/net/udp_transport.h). Every process reads the
// same logical cluster description — node count, initial membership, the
// peer address map — plus its own identity and local paths. The format is
// a line-oriented key/value file so scripts/cluster.sh can generate it
// with a heredoc:
//
//   # dvsd config
//   node 0
//   n 3
//   initial 3
//   peer 0 127.0.0.1:9100
//   peer 1 127.0.0.1:9101
//   peer 2 127.0.0.1:9102
//   control 127.0.0.1:9200
//   wal_dir /tmp/cluster/p0/wal
//   trace_dir /tmp/cluster/traces
//   drop 0.0
//   seed 1
//
// '#' starts a comment; unknown keys are an error (a typo must not
// silently change a deployment). parse() throws std::runtime_error with
// the offending line on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"
#include "net/udp_transport.h"
#include "vsys/vs_node.h"

namespace dvs::daemon {

struct DaemonConfig {
  /// This process's id (must appear in `peers`).
  ProcessId node{};
  /// Universe size; ids are 0..n-1 (make_universe).
  std::size_t n = 0;
  /// Size of the initial view v0 (the first `initial` ids); 0 = all n.
  std::size_t initial = 0;
  /// UDP address of every node, including this one (its bind address).
  std::map<ProcessId, net::UdpEndpoint> peers;
  /// Local control socket (text commands from cluster.sh / tests).
  net::UdpEndpoint control;
  /// Write-ahead-log directory (FileStableStore root). Empty = run without
  /// persistence: a SIGKILL then loses this node's durable state.
  std::string wal_dir;
  /// Directory for the on-disk spec-event trace (one file per node, shared
  /// directory). Empty = no trace recording, nothing to audit.
  std::string trace_dir;
  /// Send-side random drop probability (fault-injection knob).
  double drop = 0.0;
  /// Seed for the drop RNG (reproducible lossy runs).
  std::uint64_t seed = 1;
  /// Protocol timers, in wall-clock milliseconds.
  std::uint64_t heartbeat_ms = 20;
  std::uint64_t suspect_ms = 150;
  std::uint64_t propose_ms = 400;
  /// Largest UDP payload (see UdpConfig::max_datagram).
  std::size_t max_datagram = 60 * 1024;
  /// Sharded deployment: K > 0 runs K subgroup columns over one socket
  /// (group-framed datagrams, shard::GroupMux); 0 = the legacy single
  /// group. Every process of a deployment must agree on both values — the
  /// provisioning function is a pure function of (universe, shards,
  /// replication).
  std::size_t shards = 0;
  /// Replicas per shard (0 = every node hosts every shard).
  std::size_t replication = 0;
  /// Dynamic shard re-provisioning (shard/reprovision.h): the daemons run a
  /// pool-level VS membership group over the same socket (untagged
  /// datagrams); a pool view change migrates every column slot whose host
  /// departed onto a surviving node, with the column journals shipped as
  /// 0x48 transfer frames. Requires shards > 0 and a wal_dir.
  bool dynamic = false;

  [[nodiscard]] std::size_t initial_members() const {
    return initial == 0 ? n : initial;
  }

  /// The VsConfig these timers translate to (simulated time = microseconds
  /// of wall clock; the daemon drives the simulator from CLOCK_MONOTONIC).
  [[nodiscard]] vsys::VsConfig vs_config() const;

  /// Parses the file format above; throws std::runtime_error on bad input.
  [[nodiscard]] static DaemonConfig parse(const std::string& text);
  [[nodiscard]] static DaemonConfig parse_file(const std::string& path);

  /// Round-trips through parse() (used by tests and `dvsd --print-config`).
  [[nodiscard]] std::string to_string() const;

  /// Sanity checks (node mapped, n consistent with peers, ...); throws
  /// std::runtime_error with a diagnosis.
  void validate() const;
};

/// Parses "host:port" into an endpoint; throws on malformed input.
[[nodiscard]] net::UdpEndpoint parse_endpoint(const std::string& text);

}  // namespace dvs::daemon
