// NodeRuntime: one process's full VS/DVS/TO stack over an abstract
// Transport, with a replicated key-value state machine on top.
//
// This is the single-process counterpart of tosys::Cluster: the same
// bottom-up construction, the same callback wrapping for spec-event
// observation, the same crash-restart recovery sequence — but for exactly
// one ProcessId, over any Transport (a UdpTransport in dvsd, a shared
// SimNetwork in the sim-vs-real differential tests). Spec events go to an
// on-disk TraceSink (real deployments; the offline auditor replays them)
// and/or an in-memory log (in-process tests feed it to the same auditor
// without touching the filesystem).
//
// Recovery is automatic: if the stable store already holds journals for
// this process, the constructor rebuilds from them exactly like
// Cluster::restart — the node starts with no view and rejoins through the
// membership protocol — and records the spec::EvCrash that relaxes the TO
// sender-FIFO obligation for the lost incarnation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/state_machine.h"
#include "common/types.h"
#include "common/view.h"
#include "daemon/trace_io.h"
#include "dvsys/dvs_node.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "storage/stable_store.h"
#include "tosys/to_node.h"
#include "vsys/vs_node.h"

namespace dvs::daemon {

struct RuntimeOptions {
  vsys::VsConfig vs;
  bool gc_enabled = true;
  bool registration_enabled = true;
  toimpl::DvsToToOptions to_options;
  WeightMap weights;
  /// Keep every spec event in memory (events()); in-process tests audit
  /// these directly. dvsd turns it off — its events go to the TraceSink.
  bool record_in_memory = false;
  /// On crash-restart recovery, rebuild the KV state machine by replaying
  /// the recovered TO order prefix up to nextreport. Without it a restarted
  /// node's application state stays empty forever: the restored delivery
  /// cursor suppresses re-delivery of everything already reported.
  bool replay_kv = true;
};

/// One BRCV delivery applied to the local state machine.
struct RuntimeDelivery {
  ProcessId origin{};
  AppMsg msg;
  std::uint64_t ts_us = 0;
};

class NodeRuntime {
 public:
  /// `store` (nullable) enables persistence; `sink` (nullable) enables
  /// on-disk traces; `now_us` supplies event timestamps (CLOCK_REALTIME in
  /// dvsd, sim time in tests). Both pointers must outlive the runtime.
  NodeRuntime(ProcessId self, std::size_t n, std::size_t initial_members,
              net::Transport& net, sim::Simulator& sim, RuntimeOptions options,
              storage::StableStore* store, TraceSink* sink,
              std::function<std::uint64_t()> now_us);

  /// Attaches the net handler and arms the timers (VsNode::start).
  void start();

  /// True when the constructor found prior journals and rebuilt from them
  /// (this run is a crash-restart incarnation).
  [[nodiscard]] bool recovered() const { return recovered_; }

  /// Client broadcast of one state-machine command; returns the uid the
  /// command travels under (unique per origin across incarnations).
  std::uint64_t bcast_command(const std::string& command);

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const View& v0() const { return v0_; }
  [[nodiscard]] vsys::VsNode& vs() { return *vs_; }
  [[nodiscard]] dvsys::DvsNode& dvs() { return *dvs_; }
  [[nodiscard]] tosys::ToNode& to() { return *to_; }
  [[nodiscard]] const apps::KvStateMachine& kv() const { return kv_; }

  [[nodiscard]] const std::vector<RuntimeDelivery>& deliveries() const {
    return deliveries_;
  }
  /// The in-memory spec-event log (empty unless record_in_memory).
  [[nodiscard]] const std::vector<TracedEvent>& events() const {
    return events_;
  }

  void set_delivery_hook(std::function<void(const RuntimeDelivery&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Records spec::EvHandoff: this incarnation adopted a migration donor's
  /// delivery cursor (shard re-provisioning). Call once, right after
  /// constructing a runtime over transferred journals — the constructor's
  /// EvCrash must precede it in the trace.
  void note_handoff(std::uint64_t next) {
    note(spec::ToEvent{spec::EvHandoff{self_, next}});
  }

  /// vs/dvs/to counters plus app.applied.
  void bind_metrics(obs::MetricsRegistry& metrics);

  /// Stable-store key for one layer's journal — same scheme as
  /// tosys::Cluster ("pN/vs" etc.), so sim- and real-written WALs line up.
  [[nodiscard]] static std::string storage_key(ProcessId p, const char* layer);

 private:
  void wire();
  void note(const spec::VsEvent& event);
  void note(const spec::DvsEvent& event);
  void note(const spec::ToEvent& event);

  ProcessId self_;
  ProcessSet universe_;
  View v0_;
  RuntimeOptions options_;
  storage::StableStore* store_;
  TraceSink* sink_;
  std::function<std::uint64_t()> now_us_;
  bool recovered_ = false;

  std::unique_ptr<vsys::VsNode> vs_;
  std::unique_ptr<dvsys::DvsNode> dvs_;
  std::unique_ptr<tosys::ToNode> to_;

  apps::KvStateMachine kv_;
  std::vector<RuntimeDelivery> deliveries_;
  std::vector<TracedEvent> events_;
  std::function<void(const RuntimeDelivery&)> delivery_hook_;
  std::uint64_t uid_salt_ = 0;
};

}  // namespace dvs::daemon
