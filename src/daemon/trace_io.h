// On-disk spec-event traces for real (multi-process) deployments.
//
// A simulated Cluster feeds spec events straight into an in-process
// TraceRecorder; a dvsd process instead appends them to a per-process
// trace file, and the offline auditor (daemon/audit.h, `model_checker
// --audit`) later merges all files and replays them through the same
// acceptors. The file format reuses the WAL record framing
// (storage/wal.h): every record is CRC-32-guarded, so a SIGKILL mid-write
// leaves a torn tail that read_wal() trims to the longest clean prefix —
// the next incarnation truncates the file to that prefix before appending.
//
//   file   := record*                      (storage::Wal framing)
//   record := magic u8 | type u8 | varuint len | payload | crc32 u32
//   type   := kTraceMeta | kTraceVs | kTraceDvs | kTraceTo
//   payload(meta)  := u64 ts_us | varuint n | varuint initial | process_id
//   payload(event) := u64 ts_us | u8 tag | event fields        (see .cpp)
//
// Timestamps are CLOCK_REALTIME microseconds: all processes of a localhost
// cluster share one clock, so the auditor's cross-process merge can use
// them as its primary sort key (it tolerates skew — see audit.h).
// Integers use the common little-endian Writer/Reader, so a trace written
// on one architecture audits identically on any other.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <variant>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "spec/events.h"

namespace dvs::daemon {

inline constexpr std::uint8_t kTraceMeta = 1;
inline constexpr std::uint8_t kTraceVs = 2;
inline constexpr std::uint8_t kTraceDvs = 3;
inline constexpr std::uint8_t kTraceTo = 4;

/// One incarnation header. Every file starts with one; a crash-restart
/// appends another, so metas.size() - 1 counts restarts.
struct TraceMeta {
  std::uint64_t ts_us = 0;
  std::size_t n = 0;
  std::size_t initial_members = 0;
  ProcessId self{};
  /// Shard group this file's column belongs to; 0 = the legacy unsharded
  /// deployment. Encoded as a trailing varuint only when nonzero, so
  /// unsharded traces are byte-identical to the pre-shard format and old
  /// files decode as group 0.
  std::uint32_t group = 0;
};

// ----- event codec (exposed for tests) --------------------------------------

void encode_event(Writer& w, const spec::VsEvent& event);
void encode_event(Writer& w, const spec::DvsEvent& event);
void encode_event(Writer& w, const spec::ToEvent& event);
[[nodiscard]] spec::VsEvent decode_vs_event(Reader& r);
[[nodiscard]] spec::DvsEvent decode_dvs_event(Reader& r);
[[nodiscard]] spec::ToEvent decode_to_event(Reader& r);

/// Append-side: one sink per dvsd process.
///
/// Opening truncates any torn tail a SIGKILLed predecessor left (clean
/// WAL prefix), then appends a fresh META record. Every record is written
/// and flushed to the kernel immediately — SIGKILL cannot lose acknowledged
/// records (page cache survives the process; only machine crashes can, and
/// the auditor's per-file clean-prefix rule absorbs that too).
class TraceSink {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  TraceSink(std::string path, const TraceMeta& meta);

  void record(std::uint64_t ts_us, const spec::VsEvent& event);
  void record(std::uint64_t ts_us, const spec::DvsEvent& event);
  void record(std::uint64_t ts_us, const spec::ToEvent& event);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }

  /// Flushes, fsyncs and closes the file. Idempotent; further record()
  /// calls are silently dropped. Column teardown during dynamic
  /// re-provisioning MUST call this — holding the descriptor open leaks one
  /// fd per migrated column for the life of the daemon, and the handed-off
  /// trace must be durable before the slot's new host starts writing its
  /// own incarnation of the history.
  void close();
  /// True when opening found (and trimmed) a torn tail.
  [[nodiscard]] bool trimmed_torn_tail() const { return trimmed_; }

  /// Conventional file name for a process's trace within a shared dir.
  [[nodiscard]] static std::string path_for(const std::string& trace_dir,
                                            ProcessId p);
  /// Sharded variant: one file per (pool process, shard group) column,
  /// "p<N>.g<K>.trace". `p` is the POOL id (shard-local ids repeat across
  /// groups and would collide).
  [[nodiscard]] static std::string path_for(const std::string& trace_dir,
                                            ProcessId p, std::uint32_t group);

 private:
  void append(std::uint8_t type, const std::function<void(Writer&)>& encode);

  std::string path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
  bool trimmed_ = false;
};

// ----- load side (the auditor's input) --------------------------------------

/// One timestamped event from one process's file, local order preserved.
struct TracedEvent {
  std::uint64_t ts_us = 0;
  std::uint8_t layer = 0;  // kTraceVs / kTraceDvs / kTraceTo
  std::variant<spec::VsEvent, spec::DvsEvent, spec::ToEvent> event;
};

struct ProcessTrace {
  std::string path;
  std::vector<TraceMeta> metas;     // one per incarnation
  std::vector<TracedEvent> events;  // in file (= local) order
  bool corrupt_tail = false;        // file ended in a torn/corrupt record
  std::size_t undecodable = 0;      // CRC-clean frames that failed decoding

  [[nodiscard]] ProcessId self() const {
    return metas.empty() ? ProcessId{} : metas.front().self;
  }
  /// Shard group of this file's column (0 = unsharded).
  [[nodiscard]] std::uint32_t group() const {
    return metas.empty() ? 0 : metas.front().group;
  }
};

/// Decodes one trace file. Missing file → throws std::runtime_error; torn
/// tails and undecodable payloads are reported, not thrown (the auditor
/// decides whether they matter).
[[nodiscard]] ProcessTrace load_trace_file(const std::string& path);

/// Loads every "*.trace" file under `trace_dir`, sorted by path so the
/// result (and everything the auditor derives from it) is deterministic.
[[nodiscard]] std::vector<ProcessTrace> load_trace_dir(
    const std::string& trace_dir);

}  // namespace dvs::daemon
