#include "daemon/runtime.h"

namespace dvs::daemon {

std::string NodeRuntime::storage_key(ProcessId p, const char* layer) {
  return p.to_string() + "/" + layer;
}

NodeRuntime::NodeRuntime(ProcessId self, std::size_t n,
                         std::size_t initial_members, net::Transport& net,
                         sim::Simulator& sim, RuntimeOptions options,
                         storage::StableStore* store, TraceSink* sink,
                         std::function<std::uint64_t()> now_us)
    : self_(self),
      universe_(make_universe(n)),
      v0_{ViewId::initial(),
          make_universe(initial_members == 0 ? n : initial_members)},
      options_(std::move(options)),
      store_(store),
      sink_(sink),
      now_us_(std::move(now_us)) {
  // A prior incarnation leaves journals behind; their presence IS the
  // crash-restart signal (the daemon has no other memory of having run).
  recovered_ =
      store_ != nullptr && (store_->load(storage_key(self_, "vs")).has_value() ||
                            store_->load(storage_key(self_, "dvs")).has_value() ||
                            store_->load(storage_key(self_, "to")).has_value());
  const dvsys::DvsNodeOptions dvs_opts{.auto_gc = options_.gc_enabled,
                                       .weights = options_.weights};
  const tosys::ToNodeOptions to_opts{
      .auto_register = options_.registration_enabled,
      .automaton = options_.to_options};
  if (recovered_) {
    // Same sequence as Cluster::restart: recover every layer's durable
    // state, rebuild bottom-up, restore, and rejoin with no view.
    const std::uint64_t epoch =
        vsys::VsNode::recover_epoch(*store_, storage_key(self_, "vs"));
    const impl::DvsDurableState dvs_state = dvsys::DvsNode::recover(
        *store_, storage_key(self_, "dvs"), self_, v0_);
    const toimpl::ToDurableState to_state =
        tosys::ToNode::recover(*store_, storage_key(self_, "to"));
    vs_ = std::make_unique<vsys::VsNode>(self_, std::nullopt, net, sim,
                                         options_.vs, vsys::VsCallbacks{});
    vs_->restore_epoch(epoch);
    dvs_ = std::make_unique<dvsys::DvsNode>(self_, v0_, *vs_,
                                            dvsys::DvsCallbacks{}, dvs_opts);
    dvs_->restore(dvs_state);
    to_ = std::make_unique<tosys::ToNode>(self_, v0_, *dvs_,
                                          tosys::ToCallbacks{}, to_opts);
    to_->restore(to_state);
    if (options_.replay_kv) {
      // The restored cursor (nextreport) suppresses re-delivery of the
      // already-reported prefix, so the application must be rebuilt from
      // the durable order directly. deliveries_/hooks see only live
      // deliveries — replay is application state reconstruction, not a
      // re-observation of the protocol.
      for (std::uint64_t i = 1;
           i < to_state.nextreport && i <= to_state.order.size(); ++i) {
        auto it = to_state.content.find(to_state.order[i - 1]);
        if (it != to_state.content.end()) kv_.apply(it->second.payload);
      }
    }
  } else {
    const bool member = v0_.contains(self_);
    vs_ = std::make_unique<vsys::VsNode>(
        self_, member ? std::optional<View>{v0_} : std::nullopt, net, sim,
        options_.vs, vsys::VsCallbacks{});
    dvs_ = std::make_unique<dvsys::DvsNode>(self_, v0_, *vs_,
                                            dvsys::DvsCallbacks{}, dvs_opts);
    to_ = std::make_unique<tosys::ToNode>(self_, v0_, *dvs_,
                                          tosys::ToCallbacks{}, to_opts);
  }
  wire();
  if (store_ != nullptr) {
    vs_->attach_storage(*store_, storage_key(self_, "vs"));
    dvs_->attach_storage(*store_, storage_key(self_, "dvs"));
    to_->attach_storage(*store_, storage_key(self_, "to"));
  }
  if (recovered_) {
    // Broadcasts the lost incarnation accepted but had not yet ordered
    // leave the TO sender-FIFO obligation (spec/events.h, EvCrash). Record
    // it first so it precedes every event of this incarnation.
    note(spec::ToEvent{spec::EvCrash{self_}});
  }
}

void NodeRuntime::start() { vs_->start(); }

void NodeRuntime::note(const spec::VsEvent& event) {
  const std::uint64_t ts = now_us_();
  if (sink_ != nullptr) sink_->record(ts, event);
  if (options_.record_in_memory) events_.push_back({ts, kTraceVs, event});
}

void NodeRuntime::note(const spec::DvsEvent& event) {
  const std::uint64_t ts = now_us_();
  if (sink_ != nullptr) sink_->record(ts, event);
  if (options_.record_in_memory) events_.push_back({ts, kTraceDvs, event});
}

void NodeRuntime::note(const spec::ToEvent& event) {
  const std::uint64_t ts = now_us_();
  if (sink_ != nullptr) sink_->record(ts, event);
  if (options_.record_in_memory) events_.push_back({ts, kTraceTo, event});
}

void NodeRuntime::wire() {
  // The same callback-wrapping scheme as Cluster::wire_process, with the
  // recorder swapped for note() (disk and/or memory) and the state machine
  // applied on delivery.
  const ProcessId p = self_;

  tosys::ToCallbacks to_cb;
  to_cb.on_brcv = [this, p](const AppMsg& a, ProcessId origin) {
    note(spec::ToEvent{spec::EvBrcv{origin, p, a}});
    const RuntimeDelivery d{origin, a, now_us_()};
    deliveries_.push_back(d);
    kv_.apply(a.payload);
    if (delivery_hook_) delivery_hook_(d);
  };
  to_->set_callbacks(std::move(to_cb));

  dvsys::DvsCallbacks dvs_cb = to_->dvs_callbacks();
  {
    auto fwd_newview = std::move(dvs_cb.on_newview);
    dvs_cb.on_newview = [this, p, fwd_newview](const View& v) {
      note(spec::DvsEvent{spec::EvNewview{p, v}});
      if (fwd_newview) fwd_newview(v);
    };
    dvs_cb.on_register = [this, p] {
      note(spec::DvsEvent{spec::EvRegister{p}});
    };
    auto fwd_gprcv = std::move(dvs_cb.on_gprcv);
    dvs_cb.on_gprcv = [this, p, fwd_gprcv](const ClientMsg& m, ProcessId from) {
      note(spec::DvsEvent{spec::EvGprcv<ClientMsg>{from, p, m}});
      if (fwd_gprcv) fwd_gprcv(m, from);
    };
    auto fwd_safe = std::move(dvs_cb.on_safe);
    dvs_cb.on_safe = [this, p, fwd_safe](const ClientMsg& m, ProcessId from) {
      note(spec::DvsEvent{spec::EvSafe<ClientMsg>{from, p, m}});
      if (fwd_safe) fwd_safe(m, from);
    };
    dvs_cb.on_gpsnd = [this, p](const ClientMsg& m) {
      note(spec::DvsEvent{spec::EvGpsnd<ClientMsg>{p, m}});
    };
  }
  dvs_->set_callbacks(std::move(dvs_cb));

  vsys::VsCallbacks vs_cb = dvs_->vs_callbacks();
  {
    auto fwd_newview = std::move(vs_cb.on_newview);
    vs_cb.on_newview = [this, p, fwd_newview](const View& v) {
      note(spec::VsEvent{spec::EvNewview{p, v}});
      if (fwd_newview) fwd_newview(v);
    };
    auto fwd_gprcv = std::move(vs_cb.on_gprcv);
    vs_cb.on_gprcv = [this, p, fwd_gprcv](const Msg& m, ProcessId from) {
      note(spec::VsEvent{spec::EvGprcv<Msg>{from, p, m}});
      if (fwd_gprcv) fwd_gprcv(m, from);
    };
    auto fwd_safe = std::move(vs_cb.on_safe);
    vs_cb.on_safe = [this, p, fwd_safe](const Msg& m, ProcessId from) {
      note(spec::VsEvent{spec::EvSafe<Msg>{from, p, m}});
      if (fwd_safe) fwd_safe(m, from);
    };
    vs_cb.on_gpsnd = [this, p](const Msg& m) {
      note(spec::VsEvent{spec::EvGpsnd<Msg>{p, m}});
    };
  }
  vs_->set_callbacks(std::move(vs_cb));
}

std::uint64_t NodeRuntime::bcast_command(const std::string& command) {
  // (uid, origin) must be unique across incarnations — a restart loses the
  // counter, so fold the clock in: restarts are many microseconds apart,
  // and the low bits disambiguate bursts within one microsecond.
  const std::uint64_t uid = (now_us_() << 12) | (uid_salt_++ & 0xFFF);
  const AppMsg a{uid, self_, command};
  note(spec::ToEvent{spec::EvBcast{self_, a}});
  to_->bcast(a);
  return uid;
}

void NodeRuntime::bind_metrics(obs::MetricsRegistry& metrics) {
  vs_->bind_metrics(metrics);
  dvs_->bind_metrics(metrics);
  to_->bind_metrics(metrics);
  metrics.add_collector([this, &metrics] {
    metrics.counter("app.applied").set(kv_.applied());
    metrics.counter("app.deliveries").set(deliveries_.size());
  });
}

}  // namespace dvs::daemon
