#include "daemon/audit.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "spec/acceptors.h"

namespace dvs::daemon {

namespace {

template <typename EventT>
struct Stream {
  std::size_t process = 0;  // index into the traces vector (tie-break key)
  std::vector<std::pair<std::uint64_t, EventT>> events;
  std::size_t next = 0;

  [[nodiscard]] bool done() const { return next >= events.size(); }
  [[nodiscard]] std::uint64_t head_ts() const { return events[next].first; }
  [[nodiscard]] const EventT& head() const { return events[next].second; }
};

struct MergeOutcome {
  bool ok = true;
  std::string error;
  std::size_t accepted = 0;
  std::size_t deferrals = 0;
};

/// Timestamp-greedy merge with deferral; clone-try-commit acceptance. The
/// accepted prefix is committed into `acceptor` (callers inspect its final
/// state, e.g. for the DVS invariant check).
template <typename EventT, typename AcceptorT>
MergeOutcome merge_accept(std::vector<Stream<EventT>> streams,
                          AcceptorT& acceptor, const char* layer) {
  MergeOutcome out;
  std::vector<std::size_t> order;  // stream indices, resorted per step
  for (;;) {
    order.clear();
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (!streams[i].done()) order.push_back(i);
    }
    if (order.empty()) return out;
    std::sort(order.begin(), order.end(),
              [&streams](std::size_t a, std::size_t b) {
                if (streams[a].head_ts() != streams[b].head_ts()) {
                  return streams[a].head_ts() < streams[b].head_ts();
                }
                return streams[a].process < streams[b].process;
              });
    bool advanced = false;
    std::string diagnoses;
    for (std::size_t k = 0; k < order.size(); ++k) {
      Stream<EventT>& s = streams[order[k]];
      AcceptorT trial = acceptor;  // probe a copy; commit only on accept
      const spec::AcceptResult r = trial.feed(s.head());
      if (r.ok) {
        acceptor = std::move(trial);
        ++s.next;
        ++out.accepted;
        if (k != 0) ++out.deferrals;
        advanced = true;
        break;
      }
      diagnoses += "\n  head of process index " + std::to_string(s.process) +
                   " (ts " + std::to_string(s.head_ts()) + "): " + r.error;
    }
    if (!advanced) {
      out.ok = false;
      out.error = std::string(layer) + ": no process head acceptable after " +
                  std::to_string(out.accepted) + " events;" + diagnoses;
      return out;
    }
  }
}

/// Audits the files of ONE shard group (or the whole deployment when
/// unsharded) through its own acceptors; merges counters into `report` and
/// returns false after recording the group's violation.
bool audit_group(const std::vector<const ProcessTrace*>& traces,
                 std::uint32_t group, AuditReport& report) {
  // "shard <k>: " prefix so a sharded audit's violation names its group.
  const std::string who =
      group == 0 ? std::string() : "shard " + std::to_string(group) + ": ";
  // Universe and v0 come from the metas, which every incarnation of every
  // process wrote; they must agree within the group.
  std::size_t n = 0;
  std::size_t initial = 0;
  for (const ProcessTrace* t : traces) {
    report.incarnations += t->metas.size();
    report.undecodable += t->undecodable;
    report.corrupt_tail = report.corrupt_tail || t->corrupt_tail;
    for (const TraceMeta& m : t->metas) {
      if (n == 0) {
        n = m.n;
        initial = m.initial_members;
      } else if (m.n != n || m.initial_members != initial) {
        report.ok = false;
        report.error =
            who + "trace " + t->path + " disagrees on cluster shape (n=" +
            std::to_string(m.n) + " initial=" +
            std::to_string(m.initial_members) + " vs n=" + std::to_string(n) +
            " initial=" + std::to_string(initial) + ")";
        return false;
      }
    }
  }
  const ProcessSet universe = make_universe(n);
  const View v0{ViewId::initial(), make_universe(initial == 0 ? n : initial)};

  // Split each file into per-layer timestamped streams (local order kept).
  std::vector<Stream<spec::VsEvent>> vs_streams(traces.size());
  std::vector<Stream<spec::DvsEvent>> dvs_streams(traces.size());
  std::vector<Stream<spec::ToEvent>> to_streams(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    vs_streams[i].process = i;
    dvs_streams[i].process = i;
    to_streams[i].process = i;
    for (const TracedEvent& ev : traces[i]->events) {
      switch (ev.layer) {
        case kTraceVs:
          vs_streams[i].events.emplace_back(ev.ts_us,
                                            std::get<spec::VsEvent>(ev.event));
          break;
        case kTraceDvs:
          dvs_streams[i].events.emplace_back(
              ev.ts_us, std::get<spec::DvsEvent>(ev.event));
          break;
        case kTraceTo:
          to_streams[i].events.emplace_back(ev.ts_us,
                                            std::get<spec::ToEvent>(ev.event));
          break;
        default:
          break;
      }
    }
    report.vs_events += vs_streams[i].events.size();
    report.dvs_events += dvs_streams[i].events.size();
    report.to_events += to_streams[i].events.size();
  }

  spec::VsAcceptor vs_acceptor(universe, v0);
  const MergeOutcome vs =
      merge_accept(std::move(vs_streams), vs_acceptor, "VS");
  report.deferrals += vs.deferrals;
  if (!vs.ok) {
    report.ok = false;
    report.error = who + vs.error;
    return false;
  }

  spec::DvsAcceptor dvs_acceptor(universe, v0);
  const MergeOutcome dvs =
      merge_accept(std::move(dvs_streams), dvs_acceptor, "DVS");
  report.deferrals += dvs.deferrals;
  if (!dvs.ok) {
    report.ok = false;
    report.error = who + dvs.error;
    return false;
  }
  // The acceptor keeps a concrete resolved DvsSpec state, so the paper's
  // state Invariants 4.1/4.2 are checkable on the merged trace, not just
  // trace inclusion.
  try {
    dvs_acceptor.spec().check_invariants();
  } catch (const InvariantViolation& e) {
    report.ok = false;
    report.error = who + "DVS invariants: " + e.what();
    return false;
  }

  spec::ToAcceptor to_acceptor(universe);
  const MergeOutcome to =
      merge_accept(std::move(to_streams), to_acceptor, "TO");
  report.deferrals += to.deferrals;
  if (!to.ok) {
    report.ok = false;
    report.error = who + to.error;
    return false;
  }
  return true;
}

}  // namespace

AuditReport audit_traces(const std::vector<ProcessTrace>& traces) {
  AuditReport report;
  report.processes = traces.size();
  if (traces.empty()) {
    report.ok = false;
    report.error = "no traces to audit";
    return report;
  }
  for (const ProcessTrace& t : traces) {
    if (t.metas.empty()) {
      report.ok = false;
      report.error = "trace " + t.path + " has no META record";
      return report;
    }
  }
  // Partition by shard group (an unsharded deployment is the single group
  // 0) and audit every group through its own acceptors: conformance is a
  // per-group property, exactly like the in-process ShardedTraceRecorder.
  std::map<std::uint32_t, std::vector<const ProcessTrace*>> by_group;
  for (const ProcessTrace& t : traces) by_group[t.group()].push_back(&t);
  report.groups = by_group.size();
  for (const auto& [group, members] : by_group) {
    if (!audit_group(members, group, report)) return report;
  }
  return report;
}

AuditReport audit_dir(const std::string& trace_dir) {
  std::vector<ProcessTrace> traces;
  try {
    traces = load_trace_dir(trace_dir);
  } catch (const std::exception& e) {
    AuditReport report;
    report.ok = false;
    report.error = std::string("cannot load traces: ") + e.what();
    return report;
  }
  return audit_traces(traces);
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "audit: " << processes << " process traces, " << incarnations
     << " incarnations ("
     << (incarnations - std::min(incarnations, processes)) << " restarts)\n";
  // Only sharded deployments mention groups — unsharded reports keep the
  // pre-shard text byte for byte.
  if (groups > 1) os << "  shard groups: " << groups << "\n";
  os << "  events: vs=" << vs_events << " dvs=" << dvs_events
     << " to=" << to_events << " deferrals=" << deferrals << "\n";
  if (corrupt_tail) os << "  note: torn tail trimmed in at least one file\n";
  if (undecodable != 0) {
    os << "  note: " << undecodable << " undecodable records skipped\n";
  }
  if (ok) {
    os << "VERDICT: PASS\n";
  } else {
    os << "  violation: " << error << "\n";
    os << "VERDICT: FAIL\n";
  }
  return os.str();
}

}  // namespace dvs::daemon
