#include "daemon/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dvs::daemon {

namespace {

[[noreturn]] void bad_line(std::size_t lineno, const std::string& line,
                           const std::string& why) {
  throw std::runtime_error("config line " + std::to_string(lineno) + " (" +
                           line + "): " + why);
}

std::uint64_t parse_u64(const std::string& s) {
  std::size_t pos = 0;
  const std::uint64_t v = std::stoull(s, &pos);
  if (pos != s.size()) throw std::runtime_error("trailing garbage in '" + s + "'");
  return v;
}

}  // namespace

net::UdpEndpoint parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    throw std::runtime_error("endpoint '" + text + "' is not host:port");
  }
  const std::uint64_t port = parse_u64(text.substr(colon + 1));
  if (port == 0 || port > 65535) {
    throw std::runtime_error("endpoint '" + text + "': port out of range");
  }
  return net::UdpEndpoint{text.substr(0, colon),
                          static_cast<std::uint16_t>(port)};
}

vsys::VsConfig DaemonConfig::vs_config() const {
  vsys::VsConfig vs;
  vs.heartbeat_period = heartbeat_ms * sim::kMillisecond;
  vs.suspect_timeout = suspect_ms * sim::kMillisecond;
  vs.propose_timeout = propose_ms * sim::kMillisecond;
  return vs;
}

DaemonConfig DaemonConfig::parse(const std::string& text) {
  DaemonConfig config;
  bool saw_node = false;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    try {
      if (key == "node") {
        std::string v;
        ls >> v;
        config.node = ProcessId{static_cast<std::uint32_t>(parse_u64(v))};
        saw_node = true;
      } else if (key == "n") {
        std::string v;
        ls >> v;
        config.n = parse_u64(v);
      } else if (key == "initial") {
        std::string v;
        ls >> v;
        config.initial = parse_u64(v);
      } else if (key == "peer") {
        std::string id, ep;
        if (!(ls >> id >> ep)) bad_line(lineno, line, "want: peer <id> <host:port>");
        config.peers[ProcessId{static_cast<std::uint32_t>(parse_u64(id))}] =
            parse_endpoint(ep);
      } else if (key == "control") {
        std::string ep;
        ls >> ep;
        config.control = parse_endpoint(ep);
      } else if (key == "wal_dir") {
        ls >> config.wal_dir;
      } else if (key == "trace_dir") {
        ls >> config.trace_dir;
      } else if (key == "drop") {
        ls >> config.drop;
        if (ls.fail() || config.drop < 0.0 || config.drop > 1.0) {
          bad_line(lineno, line, "drop must be in [0,1]");
        }
      } else if (key == "seed") {
        std::string v;
        ls >> v;
        config.seed = parse_u64(v);
      } else if (key == "heartbeat_ms") {
        std::string v;
        ls >> v;
        config.heartbeat_ms = parse_u64(v);
      } else if (key == "suspect_ms") {
        std::string v;
        ls >> v;
        config.suspect_ms = parse_u64(v);
      } else if (key == "propose_ms") {
        std::string v;
        ls >> v;
        config.propose_ms = parse_u64(v);
      } else if (key == "max_datagram") {
        std::string v;
        ls >> v;
        config.max_datagram = parse_u64(v);
      } else if (key == "shards") {
        std::string v;
        ls >> v;
        config.shards = parse_u64(v);
      } else if (key == "replication") {
        std::string v;
        ls >> v;
        config.replication = parse_u64(v);
      } else if (key == "dynamic") {
        std::string v;
        ls >> v;
        config.dynamic = parse_u64(v) != 0;
      } else {
        bad_line(lineno, line, "unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      bad_line(lineno, line, "malformed number");
    } catch (const std::out_of_range&) {
      bad_line(lineno, line, "number out of range");
    }
  }
  if (!saw_node) throw std::runtime_error("config: missing 'node'");
  if (config.n == 0) config.n = config.peers.size();
  config.validate();
  return config;
}

DaemonConfig DaemonConfig::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void DaemonConfig::validate() const {
  if (n == 0) throw std::runtime_error("config: n is 0 and no peers given");
  if (!peers.contains(node)) {
    throw std::runtime_error("config: node " + node.to_string() +
                             " has no peer mapping (its bind address)");
  }
  if (node.value() >= n) {
    throw std::runtime_error("config: node id " + node.to_string() +
                             " outside universe of " + std::to_string(n));
  }
  if (initial > n) {
    throw std::runtime_error("config: initial > n");
  }
  for (const auto& [p, ep] : peers) {
    if (p.value() >= n) {
      throw std::runtime_error("config: peer " + p.to_string() +
                               " outside universe of " + std::to_string(n));
    }
    (void)ep;
  }
  if (control.port == 0) {
    throw std::runtime_error("config: missing 'control' endpoint");
  }
  if (replication > n) {
    throw std::runtime_error("config: replication > n");
  }
  if (replication != 0 && shards == 0) {
    throw std::runtime_error("config: replication without shards");
  }
  if (shards != 0 && initial != 0) {
    throw std::runtime_error(
        "config: 'initial' only applies to the unsharded deployment "
        "(provisioned replicas all start as members of their shard)");
  }
  if (dynamic && shards == 0) {
    throw std::runtime_error("config: dynamic without shards");
  }
  if (dynamic && wal_dir.empty()) {
    throw std::runtime_error(
        "config: dynamic re-provisioning requires wal_dir (journals are "
        "the transferable state)");
  }
}

std::string DaemonConfig::to_string() const {
  std::ostringstream os;
  os << "node " << node.value() << "\n";
  os << "n " << n << "\n";
  if (initial != 0) os << "initial " << initial << "\n";
  for (const auto& [p, ep] : peers) {
    os << "peer " << p.value() << " " << ep.to_string() << "\n";
  }
  os << "control " << control.to_string() << "\n";
  if (!wal_dir.empty()) os << "wal_dir " << wal_dir << "\n";
  if (!trace_dir.empty()) os << "trace_dir " << trace_dir << "\n";
  if (drop != 0.0) os << "drop " << drop << "\n";
  os << "seed " << seed << "\n";
  os << "heartbeat_ms " << heartbeat_ms << "\n";
  os << "suspect_ms " << suspect_ms << "\n";
  os << "propose_ms " << propose_ms << "\n";
  os << "max_datagram " << max_datagram << "\n";
  if (shards != 0) os << "shards " << shards << "\n";
  if (replication != 0) os << "replication " << replication << "\n";
  if (dynamic) os << "dynamic 1\n";
  return os.str();
}

}  // namespace dvs::daemon
