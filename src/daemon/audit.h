// Offline trace auditor for real deployments (`model_checker --audit`).
//
// A simulated run checks itself online (spec::TraceRecorder sees a global
// event order). A real cluster has no global order: each dvsd process
// records only its own externally visible actions, timestamped with the
// shared host clock. The auditor reconstructs a global trace per layer by
// merging the per-process sequences — local order is preserved, and the
// cross-process interleaving is chosen greedily by timestamp, with
// deferral as the escape hatch: when the earliest head event is not yet
// acceptable to the spec (clock skew, or an ordering the specs constrain
// more tightly than the clock), the auditor tries the other processes'
// heads before declaring a violation. Acceptance uses clone-try-commit —
// acceptors are value types, so a rejected probe never corrupts the
// committed state.
//
// A violation is reported only when NO process's head event is acceptable,
// i.e. when no interleaving extension exists under the greedy strategy —
// the same completeness argument as the acceptors themselves: an internal
// spec choice only becomes observable at its first external use, and
// per-process local order pins every per-process constraint.
//
// The audit is single-threaded and deterministic in its input bytes: the
// same trace directory produces byte-identical reports regardless of
// --jobs or load order (files sort by path; ties break by process index).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "daemon/trace_io.h"

namespace dvs::daemon {

struct AuditReport {
  bool ok = true;
  std::string error;  // first violation, with per-head diagnoses; in a
                      // sharded audit it is prefixed "shard <k>: "

  std::size_t processes = 0;
  /// Distinct shard groups audited (1 for an unsharded deployment). Each
  /// group's files are merged and replayed through their own acceptors —
  /// per-group conformance, independent of every sibling.
  std::size_t groups = 0;
  std::size_t incarnations = 0;  // metas across all files (restarts visible)
  std::size_t vs_events = 0;
  std::size_t dvs_events = 0;
  std::size_t to_events = 0;
  /// Times the merge committed a head that was not the globally earliest
  /// timestamp (clock skew absorbed by deferral).
  std::size_t deferrals = 0;
  std::size_t undecodable = 0;  // CRC-clean records that failed decoding
  bool corrupt_tail = false;    // some file ended in a torn record

  /// Deterministic multi-line report ending in "VERDICT: PASS" or
  /// "VERDICT: FAIL".
  [[nodiscard]] std::string to_string() const;
};

/// Audits already-loaded traces (in-process tests hand NodeRuntime event
/// logs straight in). Files are partitioned by their meta group id and each
/// shard group is audited independently; universe and v0 come from the
/// group's metas, which must agree within the group. A violation names its
/// shard.
[[nodiscard]] AuditReport audit_traces(const std::vector<ProcessTrace>& traces);

/// Loads every *.trace under `trace_dir` and audits. Errors on an empty or
/// missing directory.
[[nodiscard]] AuditReport audit_dir(const std::string& trace_dir);

}  // namespace dvs::daemon
