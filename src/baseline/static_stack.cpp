#include "baseline/static_stack.h"

namespace dvs::baseline {

StaticFilter::StaticFilter(ProcessId self, const View& v0,
                           const ProcessSet& universe, vsys::VsNode& vs,
                           Callbacks callbacks)
    : self_(self),
      majority_(universe),
      vs_(vs),
      callbacks_(std::move(callbacks)) {
  if (v0.contains(self)) {
    vs_cur_ = v0;
    client_cur_ = v0;
  }
}

void StaticFilter::gpsnd(const ClientMsg& m) {
  // Only forward sends issued while the client is in a live primary;
  // otherwise the message would be tagged with a view the client is not
  // actually in.
  if (!in_primary()) return;
  vs_.gpsnd(to_msg(m));
}

vsys::VsCallbacks StaticFilter::vs_callbacks() {
  vsys::VsCallbacks cb;
  cb.on_newview = [this](const View& v) {
    vs_cur_ = v;
    if (majority_.is_primary(v.set()) &&
        (!client_cur_.has_value() || v.id() > client_cur_->id())) {
      client_cur_ = v;
      if (callbacks_.on_newview) callbacks_.on_newview(v);
    }
  };
  cb.on_gprcv = [this](const Msg& m, ProcessId from) {
    if (!in_primary() || !is_client(m)) return;
    if (callbacks_.on_gprcv) callbacks_.on_gprcv(to_client(m), from);
  };
  cb.on_safe = [this](const Msg& m, ProcessId from) {
    if (!in_primary() || !is_client(m)) return;
    if (callbacks_.on_safe) callbacks_.on_safe(to_client(m), from);
  };
  return cb;
}

StaticToNode::StaticToNode(ProcessId self, const View& v0,
                           StaticFilter& filter, Callbacks callbacks)
    : automaton_(self, v0),
      filter_(filter),
      callbacks_(std::move(callbacks)) {}

void StaticToNode::bcast(const AppMsg& a) {
  automaton_.on_bcast(a);
  drain();
}

StaticFilter::Callbacks StaticToNode::filter_callbacks() {
  StaticFilter::Callbacks cb;
  cb.on_newview = [this](const View& v) {
    automaton_.on_dvs_newview(v);
    drain();
  };
  cb.on_gprcv = [this](const ClientMsg& m, ProcessId from) {
    automaton_.on_dvs_gprcv(m, from);
    drain();
  };
  cb.on_safe = [this](const ClientMsg& m, ProcessId from) {
    automaton_.on_dvs_safe(m, from);
    drain();
  };
  return cb;
}

void StaticToNode::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    while (automaton_.can_label()) {
      automaton_.apply_label();
      progressed = true;
    }
    while (automaton_.next_gpsnd().has_value()) {
      filter_.gpsnd(automaton_.take_gpsnd());
      progressed = true;
    }
    // Registration is a no-op for the static service, but the automaton
    // still tracks it; keep its state machine moving.
    if (automaton_.can_register()) {
      automaton_.apply_register();
      progressed = true;
    }
    while (automaton_.can_confirm()) {
      automaton_.apply_confirm();
      progressed = true;
    }
    while (automaton_.next_brcv().has_value()) {
      auto [a, origin] = automaton_.take_brcv();
      if (callbacks_.on_brcv) callbacks_.on_brcv(a, origin);
      progressed = true;
    }
  }
}

StaticCluster::StaticCluster(std::size_t n_processes, std::uint64_t seed,
                             net::NetConfig net_config,
                             vsys::VsConfig vs_config)
    : rng_(seed),
      universe_(make_universe(n_processes)),
      v0_(initial_view(universe_)) {
  net_ = std::make_unique<net::SimNetwork>(sim_, rng_, net_config, universe_);
  for (ProcessId p : universe_) {
    vs_[p] = std::make_unique<vsys::VsNode>(p, std::optional<View>{v0_},
                                            *net_, sim_, vs_config,
                                            vsys::VsCallbacks{});
    filters_[p] = std::make_unique<StaticFilter>(p, v0_, universe_, *vs_[p],
                                                 StaticFilter::Callbacks{});
    StaticToNode::Callbacks to_cb;
    to_cb.on_brcv = [this, p](const AppMsg& a, ProcessId origin) {
      deliveries_.push_back(Delivery{p, origin, a, sim_.now()});
      to_trace_.push_back(spec::EvBrcv{origin, p, a});
    };
    to_[p] = std::make_unique<StaticToNode>(p, v0_, *filters_[p],
                                            std::move(to_cb));
  }
  // Wire the callback chain bottom-up (same two-phase idiom as Cluster).
  for (ProcessId p : universe_) {
    filters_.at(p)->set_callbacks(to_.at(p)->filter_callbacks());
    vs_.at(p)->set_callbacks(filters_.at(p)->vs_callbacks());
  }
}

void StaticCluster::start() {
  for (auto& [p, node] : vs_) node->start();
}

void StaticCluster::bcast(ProcessId p, AppMsg a) {
  to_trace_.push_back(spec::EvBcast{p, a});
  to_.at(p)->bcast(a);
}

std::vector<StaticCluster::Delivery> StaticCluster::deliveries_at(
    ProcessId p) const {
  std::vector<Delivery> out;
  for (const Delivery& d : deliveries_) {
    if (d.receiver == p) out.push_back(d);
  }
  return out;
}

spec::AcceptResult StaticCluster::check_to_trace() const {
  spec::ToAcceptor acceptor(universe_);
  return acceptor.feed_all(to_trace_);
}

double StaticCluster::primary_fraction() const {
  std::size_t count = 0;
  std::size_t live = 0;
  for (const auto& [p, filter] : filters_) {
    if (net_->paused(p)) continue;
    ++live;
    if (filter->in_primary()) ++count;
  }
  return live == 0 ? 0.0
                   : static_cast<double>(count) / static_cast<double>(live);
}

}  // namespace dvs::baseline
