// Static primary-view policies — the baselines the paper's dynamic notion
// is motivated against (Section 1).
//
// A *static* policy decides whether a membership view is primary by looking
// only at a fixed universe (majority) or a predefined quorum set; it needs
// no history, but loses the primary as soon as the live component drops to
// half the universe, no matter how gracefully the system shrank.
//
// DynamicVotingOracle is an idealized, centralized reference implementation
// of dynamic voting (one global chain of primaries, each a strict majority
// of its predecessor). It upper-bounds what any distributed dynamic scheme
// (like DVS) can achieve, and the availability bench reports all three.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "common/view.h"

namespace dvs::baseline {

/// Static majority of a fixed universe.
class MajorityDetector {
 public:
  explicit MajorityDetector(ProcessSet universe)
      : universe_(std::move(universe)) {}

  [[nodiscard]] bool is_primary(const ProcessSet& members) const {
    return 2 * intersection_size(members, universe_) > universe_.size();
  }
  [[nodiscard]] const ProcessSet& universe() const { return universe_; }

 private:
  ProcessSet universe_;
};

/// Predefined quorum set: a view is primary iff it contains some quorum.
/// The constructor validates the defining property — every two quorums
/// intersect — which is what permits information flow between primaries.
class QuorumSetDetector {
 public:
  explicit QuorumSetDetector(std::vector<ProcessSet> quorums);

  [[nodiscard]] bool is_primary(const ProcessSet& members) const;
  [[nodiscard]] const std::vector<ProcessSet>& quorums() const {
    return quorums_;
  }

  /// All majority subsets of `universe` (the canonical quorum system).
  static QuorumSetDetector majorities(const ProcessSet& universe);

  /// Weighted majority: a view is a quorum iff its weight exceeds half the
  /// total. Weights are per-process (indexed by position in `universe`).
  static QuorumSetDetector weighted(const ProcessSet& universe,
                                    const std::vector<std::size_t>& weights);

 private:
  std::vector<ProcessSet> quorums_;
};

/// Idealized centralized dynamic voting: the reference chain of primaries.
/// advance() is fed each successive live component; the component becomes
/// the new primary iff it contains a strict majority of the previous
/// primary's membership.
class DynamicVotingOracle {
 public:
  explicit DynamicVotingOracle(View initial_primary)
      : primary_(std::move(initial_primary)) {}

  /// Feeds the next configuration; returns true iff it became primary.
  bool advance(const ProcessSet& members) {
    if (!majority_of(members, primary_.set())) return false;
    primary_ = View{ViewId{primary_.id().epoch() + 1, *members.begin()},
                    members};
    return true;
  }

  [[nodiscard]] const View& primary() const { return primary_; }
  [[nodiscard]] bool is_member(ProcessId p) const {
    return primary_.contains(p);
  }

 private:
  View primary_;
};

}  // namespace dvs::baseline
