// The static-primary baseline stack: totally-ordered broadcast in the style
// of Fekete–Lynch–Shvartsman [12], where "primary" is a *local, static*
// test — the view contains a strict majority of the fixed universe — rather
// than the paper's dynamic notion.
//
// Architecture: the same verified DvsToTo application automaton runs over
// vsys through StaticFilter, a drop-in replacement for the VS-TO-DVS layer
// that forwards exactly the views passing the static majority test (no
// "info" exchange, no registration — static primaries always pairwise
// intersect, so no history tracking is needed).
//
// This gives the availability benches a faithful head-to-head opponent: the
// application code is identical; only the primary-view notion differs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/static_primary.h"
#include "common/labels.h"
#include "net/sim_network.h"
#include "sim/simulator.h"
#include "spec/acceptors.h"
#include "spec/events.h"
#include "toimpl/dvs_to_to.h"
#include "vsys/vs_node.h"

namespace dvs::baseline {

/// Per-process filter: VS views → static-majority primary views.
/// Provides the same upward interface shape as dvsys::DvsNode.
class StaticFilter {
 public:
  struct Callbacks {
    std::function<void(const View&)> on_newview;
    std::function<void(const ClientMsg&, ProcessId)> on_gprcv;
    std::function<void(const ClientMsg&, ProcessId)> on_safe;
  };

  StaticFilter(ProcessId self, const View& v0, const ProcessSet& universe,
               vsys::VsNode& vs, Callbacks callbacks);

  /// Replaces the callbacks; must be called before traffic flows.
  void set_callbacks(Callbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  void gpsnd(const ClientMsg& m);
  [[nodiscard]] vsys::VsCallbacks vs_callbacks();

  /// The last primary view forwarded to the client (client-cur analogue).
  [[nodiscard]] const std::optional<View>& primary_view() const {
    return client_cur_;
  }
  /// True when the client's view is the service's current view: the node is
  /// operating in a live static primary.
  [[nodiscard]] bool in_primary() const {
    return client_cur_.has_value() && vs_cur_.has_value() &&
           client_cur_->id() == vs_cur_->id();
  }

 private:
  ProcessId self_;
  MajorityDetector majority_;
  vsys::VsNode& vs_;
  Callbacks callbacks_;
  std::optional<View> vs_cur_;
  std::optional<View> client_cur_;
};

/// One process of the baseline stack: vsys → StaticFilter → DvsToTo.
class StaticToNode {
 public:
  struct Callbacks {
    std::function<void(const AppMsg&, ProcessId origin)> on_brcv;
  };

  StaticToNode(ProcessId self, const View& v0, StaticFilter& filter,
               Callbacks callbacks);

  void bcast(const AppMsg& a);
  [[nodiscard]] StaticFilter::Callbacks filter_callbacks();
  [[nodiscard]] const toimpl::DvsToTo& automaton() const { return automaton_; }

 private:
  void drain();

  toimpl::DvsToTo automaton_;
  StaticFilter& filter_;
  Callbacks callbacks_;
};

/// Whole-cluster assembly for the baseline, mirroring tosys::Cluster.
class StaticCluster {
 public:
  StaticCluster(std::size_t n_processes, std::uint64_t seed,
                net::NetConfig net_config = {}, vsys::VsConfig vs_config = {});

  void start();
  void run_for(sim::Time duration) { sim_.run_until(sim_.now() + duration); }
  void bcast(ProcessId p, AppMsg a);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::SimNetwork& net() { return *net_; }
  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] StaticFilter& filter(ProcessId p) { return *filters_.at(p); }

  struct Delivery {
    ProcessId receiver;
    ProcessId origin;
    AppMsg msg;
    sim::Time at;
  };
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] std::vector<Delivery> deliveries_at(ProcessId p) const;

  /// TO-spec acceptance over the recorded BCAST/BRCV trace.
  [[nodiscard]] spec::AcceptResult check_to_trace() const;

  /// Fraction of live processes in a (static) primary right now.
  [[nodiscard]] double primary_fraction() const;

 private:
  Rng rng_;
  ProcessSet universe_;
  View v0_;
  sim::Simulator sim_;
  std::unique_ptr<net::SimNetwork> net_;
  std::map<ProcessId, std::unique_ptr<vsys::VsNode>> vs_;
  std::map<ProcessId, std::unique_ptr<StaticFilter>> filters_;
  std::map<ProcessId, std::unique_ptr<StaticToNode>> to_;
  std::vector<spec::ToEvent> to_trace_;
  std::vector<Delivery> deliveries_;
};

}  // namespace dvs::baseline
