#include "baseline/static_primary.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dvs::baseline {

QuorumSetDetector::QuorumSetDetector(std::vector<ProcessSet> quorums)
    : quorums_(std::move(quorums)) {
  if (quorums_.empty()) {
    throw std::invalid_argument("quorum set must be nonempty");
  }
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    if (quorums_[i].empty()) {
      throw std::invalid_argument("quorums must be nonempty");
    }
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      if (!intersects(quorums_[i], quorums_[j])) {
        throw std::invalid_argument(
            "quorum set violates the pairwise intersection property");
      }
    }
  }
}

bool QuorumSetDetector::is_primary(const ProcessSet& members) const {
  return std::any_of(quorums_.begin(), quorums_.end(), [&](const ProcessSet& q) {
    return std::includes(members.begin(), members.end(), q.begin(), q.end());
  });
}

QuorumSetDetector QuorumSetDetector::majorities(const ProcessSet& universe) {
  // Enumerate minimal majorities: subsets of size floor(n/2)+1.
  const std::vector<ProcessId> procs(universe.begin(), universe.end());
  const std::size_t n = procs.size();
  if (n == 0) throw std::invalid_argument("empty universe");
  if (n > 20) throw std::invalid_argument("universe too large to enumerate");
  const std::size_t k = n / 2 + 1;
  std::vector<ProcessSet> quorums;
  // Iterate subsets by bitmask, keeping those of size exactly k.
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) != k) continue;
    ProcessSet q;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) q.insert(procs[i]);
    }
    quorums.push_back(std::move(q));
  }
  return QuorumSetDetector(std::move(quorums));
}

QuorumSetDetector QuorumSetDetector::weighted(
    const ProcessSet& universe, const std::vector<std::size_t>& weights) {
  const std::vector<ProcessId> procs(universe.begin(), universe.end());
  if (procs.size() != weights.size()) {
    throw std::invalid_argument("one weight per process required");
  }
  if (procs.size() > 20) {
    throw std::invalid_argument("universe too large to enumerate");
  }
  const std::size_t total =
      std::accumulate(weights.begin(), weights.end(), std::size_t{0});
  std::vector<ProcessSet> quorums;
  for (std::size_t mask = 0; mask < (std::size_t{1} << procs.size()); ++mask) {
    std::size_t weight = 0;
    ProcessSet q;
    for (std::size_t i = 0; i < procs.size(); ++i) {
      if (mask & (std::size_t{1} << i)) {
        weight += weights[i];
        q.insert(procs[i]);
      }
    }
    if (2 * weight > total) {
      // Keep only minimal quorums to bound the set's size.
      bool minimal = true;
      for (ProcessId p : q) {
        std::size_t without = weight;
        for (std::size_t i = 0; i < procs.size(); ++i) {
          if (procs[i] == p) without -= weights[i];
        }
        if (2 * without > total) {
          minimal = false;
          break;
        }
      }
      if (minimal) quorums.push_back(std::move(q));
    }
  }
  return QuorumSetDetector(std::move(quorums));
}

}  // namespace dvs::baseline
