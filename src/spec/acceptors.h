// Trace acceptors: decide whether an observed external trace is a trace of
// the VS, DVS or TO specification.
//
// The specs are nondeterministic (internal CREATEVIEW/ORDER actions). The
// acceptors resolve that nondeterminism greedily — internal actions are
// inserted lazily at the first external event that needs them — which is
// complete for these specifications because an internal choice only becomes
// observable at its first external use:
//   * a view is created when first reported (the paper itself adopts this
//     convention for DVS-IMPL, Section 5.1);
//   * a pending message is ordered when a first receiver commits its queue
//     position.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/messages.h"
#include "spec/dvs_spec.h"
#include "spec/events.h"
#include "spec/to_spec.h"
#include "spec/vs_spec.h"

namespace dvs::spec {

/// Result of feeding one event (or a whole trace) to an acceptor.
struct AcceptResult {
  bool ok = true;
  std::string error;  // why the trace was rejected, with the offending event

  static AcceptResult accepted() { return {}; }
  static AcceptResult rejected(std::string why) {
    return {false, std::move(why)};
  }
};

/// Acceptor for the group-communication specs. SpecT is VsSpec (MsgT = Msg)
/// or DvsSpec (MsgT = ClientMsg); EvRegister events are only legal for DVS.
template <typename SpecT, typename MsgT>
class GroupAcceptor {
 public:
  GroupAcceptor(ProcessSet universe, View v0)
      : spec_(std::move(universe), std::move(v0)) {}

  /// Feed the next external event; returns rejection with diagnosis if the
  /// spec cannot take a matching step. After a rejection the acceptor state
  /// is unspecified; use a fresh acceptor per trace.
  AcceptResult feed(const GroupEvent<MsgT>& event);

  /// Feed a whole trace.
  AcceptResult feed_all(const std::vector<GroupEvent<MsgT>>& trace);

  [[nodiscard]] const SpecT& spec() const { return spec_; }
  [[nodiscard]] SpecT& spec() { return spec_; }
  [[nodiscard]] std::size_t events_accepted() const {
    return events_accepted_;
  }

 private:
  AcceptResult on_gpsnd(const EvGpsnd<MsgT>& ev);
  AcceptResult on_gprcv(const EvGprcv<MsgT>& ev);
  AcceptResult on_safe(const EvSafe<MsgT>& ev);
  AcceptResult on_newview(const EvNewview& ev);
  AcceptResult on_register(const EvRegister& ev);

  SpecT spec_;
  std::size_t events_accepted_ = 0;
};

using VsAcceptor = GroupAcceptor<VsSpec, Msg>;
using DvsAcceptor = GroupAcceptor<DvsSpec, ClientMsg>;

/// Acceptor for the TO broadcast spec.
class ToAcceptor {
 public:
  explicit ToAcceptor(ProcessSet universe) : spec_(std::move(universe)) {}

  AcceptResult feed(const ToEvent& event);
  AcceptResult feed_all(const std::vector<ToEvent>& trace);

  [[nodiscard]] const ToSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t events_accepted() const {
    return events_accepted_;
  }

 private:
  ToSpec spec_;
  std::size_t events_accepted_ = 0;
};

}  // namespace dvs::spec
