#include "spec/to_spec.h"

#include "common/check.h"

namespace dvs::spec {
namespace {
const std::deque<AppMsg> kEmptyPending;
}  // namespace

ToSpec::ToSpec(ProcessSet universe) : universe_(std::move(universe)) {}

void ToSpec::apply_bcast(const AppMsg& a, ProcessId p) {
  pending_[p].push_back(a);
}

bool ToSpec::can_order(ProcessId p) const { return !pending(p).empty(); }

void ToSpec::apply_order(ProcessId p) {
  DVS_REQUIRE("TO-ORDER", can_order(p), p.to_string());
  auto& pend = pending_[p];
  queue_.emplace_back(pend.front(), p);
  pend.pop_front();
}

std::optional<std::pair<AppMsg, ProcessId>> ToSpec::next_brcv(
    ProcessId q) const {
  const std::size_t idx = next(q);
  if (idx > queue_.size()) return std::nullopt;
  return queue_[idx - 1];
}

std::pair<AppMsg, ProcessId> ToSpec::apply_brcv(ProcessId q) {
  auto delivery = next_brcv(q);
  DVS_REQUIRE("BRCV", delivery.has_value(), "at " << q.to_string());
  next_[q] = next(q) + 1;
  return *delivery;
}

const std::deque<AppMsg>& ToSpec::pending(ProcessId p) const {
  auto it = pending_.find(p);
  return it == pending_.end() ? kEmptyPending : it->second;
}

std::size_t ToSpec::next(ProcessId q) const {
  auto it = next_.find(q);
  return it == next_.end() ? 1 : it->second;
}

}  // namespace dvs::spec
