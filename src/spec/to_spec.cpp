#include "spec/to_spec.h"

#include "common/check.h"

namespace dvs::spec {
namespace {
const std::deque<AppMsg> kEmptyPending;
const std::vector<AppMsg> kEmptyLoose;
}  // namespace

ToSpec::ToSpec(ProcessSet universe) : universe_(std::move(universe)) {}

void ToSpec::apply_bcast(const AppMsg& a, ProcessId p) {
  pending_[p].push_back(a);
}

bool ToSpec::can_order(ProcessId p) const { return !pending(p).empty(); }

void ToSpec::apply_order(ProcessId p) {
  DVS_REQUIRE("TO-ORDER", can_order(p), p.to_string());
  auto& pend = pending_[p];
  queue_.emplace_back(pend.front(), p);
  pend.pop_front();
}

std::optional<std::pair<AppMsg, ProcessId>> ToSpec::next_brcv(
    ProcessId q) const {
  const std::size_t idx = next(q);
  if (idx > queue_.size()) return std::nullopt;
  return queue_[idx - 1];
}

std::pair<AppMsg, ProcessId> ToSpec::apply_brcv(ProcessId q) {
  auto delivery = next_brcv(q);
  DVS_REQUIRE("BRCV", delivery.has_value(), "at " << q.to_string());
  next_[q] = next(q) + 1;
  return *delivery;
}

void ToSpec::apply_crash(ProcessId p) {
  auto it = pending_.find(p);
  if (it == pending_.end()) return;
  auto& loose = loose_[p];
  loose.insert(loose.end(), it->second.begin(), it->second.end());
  it->second.clear();
}

bool ToSpec::can_handoff(std::uint64_t next) const {
  return next >= 1 && next <= queue_.size() + 1;
}

void ToSpec::apply_handoff(ProcessId p, std::uint64_t next) {
  DVS_REQUIRE("HANDOFF", can_handoff(next),
              p.to_string() << " next=" << next << " |queue|=" << queue_.size());
  apply_crash(p);  // the lost incarnation's unordered broadcasts go loose
  next_[p] = next;
}

bool ToSpec::can_order_loose(ProcessId p, const AppMsg& a) const {
  const std::vector<AppMsg>& loose = this->loose(p);
  for (const AppMsg& m : loose) {
    if (m == a) return true;
  }
  return false;
}

void ToSpec::apply_order_loose(ProcessId p, const AppMsg& a) {
  DVS_REQUIRE("TO-ORDER-LOOSE", can_order_loose(p, a), p.to_string());
  auto& loose = loose_[p];
  for (auto it = loose.begin(); it != loose.end(); ++it) {
    if (*it == a) {
      loose.erase(it);
      break;
    }
  }
  queue_.emplace_back(a, p);
}

const std::deque<AppMsg>& ToSpec::pending(ProcessId p) const {
  auto it = pending_.find(p);
  return it == pending_.end() ? kEmptyPending : it->second;
}

const std::vector<AppMsg>& ToSpec::loose(ProcessId p) const {
  auto it = loose_.find(p);
  return it == loose_.end() ? kEmptyLoose : it->second;
}

std::size_t ToSpec::next(ProcessId q) const {
  auto it = next_.find(q);
  return it == next_.end() ? 1 : it->second;
}

}  // namespace dvs::spec
