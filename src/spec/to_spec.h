// Executable specification of TO — the (non-group-oriented) totally-ordered
// broadcast service of Fekete–Lynch–Shvartsman [12], which Section 6 of the
// paper implements on top of DVS (Theorem 6.4).
//
// TO accepts messages from clients (BCAST) and delivers them to all clients
// (BRCV) according to one system-wide total order; each client receives a
// prefix of that order, and each delivery reports the original sender.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/labels.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::spec {

/// The TO service automaton.
class ToSpec {
 public:
  explicit ToSpec(ProcessSet universe);

  /// input BCAST(a)_p — always enabled. Eff: append a to pending[p].
  void apply_bcast(const AppMsg& a, ProcessId p);

  /// internal TO-ORDER(a, p): moves the head of pending[p] to the global
  /// queue. Pre: pending[p] nonempty.
  [[nodiscard]] bool can_order(ProcessId p) const;
  void apply_order(ProcessId p);

  /// input CRASH_p — p crash-restarts. Eff: pending[p] moves to loose[p]:
  /// those messages lose their FIFO position (the crash may have dropped
  /// them before ordering, or a surviving replica may order them at any
  /// later point) but remain orderable exactly once.
  void apply_crash(ProcessId p);

  /// internal TO-ORDER-LOOSE(a, p): orders a message from a previous
  /// incarnation of p, in any position. Pre: a ∈ loose[p].
  [[nodiscard]] bool can_order_loose(ProcessId p, const AppMsg& a) const;
  void apply_order_loose(ProcessId p, const AppMsg& a);

  /// input HANDOFF(next)_p — p's slot was re-provisioned onto a host that
  /// adopted a survivor's durable state (see spec::EvHandoff). Pre:
  /// 1 <= next <= |queue| + 1 (only established positions may be claimed).
  /// Eff: next[p] := next — the adopted cursor, exactly. It may move
  /// *backward* (the donor lagged the departed replica's deliveries: those
  /// positions are re-delivered at the new host, the honest observable of a
  /// migration) but never beyond the established order. Like CRASH,
  /// pending[p] moves to loose[p] (the lost incarnation's unordered
  /// broadcasts).
  [[nodiscard]] bool can_handoff(std::uint64_t next) const;
  void apply_handoff(ProcessId p, std::uint64_t next);

  /// output BRCV(a)_{p,q}: pre queue(next[q]) = (a, p). Returns (a, p).
  [[nodiscard]] std::optional<std::pair<AppMsg, ProcessId>> next_brcv(
      ProcessId q) const;
  std::pair<AppMsg, ProcessId> apply_brcv(ProcessId q);

  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const std::vector<std::pair<AppMsg, ProcessId>>& queue()
      const {
    return queue_;
  }
  [[nodiscard]] const std::deque<AppMsg>& pending(ProcessId p) const;
  [[nodiscard]] const std::vector<AppMsg>& loose(ProcessId p) const;
  [[nodiscard]] std::size_t next(ProcessId q) const;

 private:
  ProcessSet universe_;
  std::vector<std::pair<AppMsg, ProcessId>> queue_;
  std::map<ProcessId, std::deque<AppMsg>> pending_;
  /// Unordered broadcasts of crashed incarnations of p (see apply_crash).
  std::map<ProcessId, std::vector<AppMsg>> loose_;
  std::map<ProcessId, std::size_t> next_;  // init 1
};

}  // namespace dvs::spec
