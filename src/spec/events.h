// External-trace event types.
//
// A trace of a view-oriented group communication service is a sequence of
// external actions. The acceptors replay such traces against the executable
// specs to decide trace inclusion (the executable counterpart of the paper's
// Theorems 5.9 and 6.4 and of the claim that our distributed stack
// implements the specifications).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/labels.h"
#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::spec {

/// GPSND(m)_p — client at p submits m. MsgT is Msg for VS, ClientMsg for DVS.
template <typename MsgT>
struct EvGpsnd {
  ProcessId p;
  MsgT m;
};

/// GPRCV(m)_{sender,receiver}.
template <typename MsgT>
struct EvGprcv {
  ProcessId sender;
  ProcessId receiver;
  MsgT m;
};

/// SAFE(m)_{sender,receiver}.
template <typename MsgT>
struct EvSafe {
  ProcessId sender;
  ProcessId receiver;
  MsgT m;
};

/// NEWVIEW(v)_p.
struct EvNewview {
  ProcessId p;
  View v;
};

/// REGISTER_p (DVS only).
struct EvRegister {
  ProcessId p;
};

template <typename MsgT>
using GroupEvent = std::variant<EvGpsnd<MsgT>, EvGprcv<MsgT>, EvSafe<MsgT>,
                                EvNewview, EvRegister>;

using VsEvent = GroupEvent<Msg>;
using DvsEvent = GroupEvent<ClientMsg>;

template <typename MsgT>
[[nodiscard]] std::string to_string(const GroupEvent<MsgT>& e) {
  struct Visitor {
    std::string operator()(const EvGpsnd<MsgT>& ev) const {
      return "gpsnd(" + dvs::to_string(ev.m) + ")_" + ev.p.to_string();
    }
    std::string operator()(const EvGprcv<MsgT>& ev) const {
      return "gprcv(" + dvs::to_string(ev.m) + ")_" + ev.sender.to_string() +
             "," + ev.receiver.to_string();
    }
    std::string operator()(const EvSafe<MsgT>& ev) const {
      return "safe(" + dvs::to_string(ev.m) + ")_" + ev.sender.to_string() +
             "," + ev.receiver.to_string();
    }
    std::string operator()(const EvNewview& ev) const {
      return "newview(" + ev.v.to_string() + ")_" + ev.p.to_string();
    }
    std::string operator()(const EvRegister& ev) const {
      return "register_" + ev.p.to_string();
    }
  };
  return std::visit(Visitor{}, e);
}

/// BCAST(a)_p — TO client submits a.
struct EvBcast {
  ProcessId p;
  AppMsg a;
};

/// BRCV(a)_{sender,receiver} — TO delivery.
struct EvBrcv {
  ProcessId sender;
  ProcessId receiver;
  AppMsg a;
};

/// CRASH_p — p crash-restarts, losing its volatile state. Messages p had
/// broadcast that were not yet ordered leave the sender-FIFO obligation:
/// each may be lost outright or resurface later (a peer or p's own
/// write-ahead log carried it), but deliveries of p's *subsequent*
/// broadcasts no longer wait behind them. FIFO among the survivors of one
/// incarnation, and within every later incarnation, still holds.
struct EvCrash {
  ProcessId p;
};

/// HANDOFF(next)_p — p's slot is re-provisioned onto a new host that
/// adopted a surviving replica's durable state (shard migration). The new
/// incarnation inherits the donor's delivered cursor exactly: positions up
/// to next-1 of the total order count as received by p, and p's subsequent
/// BRCVs continue contiguously from `next`. The cursor may move backward —
/// the donor lagged the departed replica, so those positions re-deliver at
/// the new host — or jump forward past positions the lost incarnation
/// delivered; unlike EvCrash it may never claim positions the global order
/// has not yet established — that would be fabricated state (split-brain
/// evidence) and is rejected.
struct EvHandoff {
  ProcessId p;
  std::uint64_t next = 1;  // 1-based index of p's next expected delivery
};

using ToEvent = std::variant<EvBcast, EvBrcv, EvCrash, EvHandoff>;

[[nodiscard]] std::string to_string(const ToEvent& e);

}  // namespace dvs::spec
