// Executable transcription of Figure 1: the (modified) VS specification — a
// static view-oriented group communication service.
//
// State variables, action names, preconditions and effects follow the figure
// one-for-one. Actions are exposed as `can_<action>` (precondition) and
// `apply_<action>` (effect; throws PreconditionViolation when disabled, so
// harness bugs surface immediately).
//
// VS carries the full message universe M: its clients in DVS-IMPL are the
// VS-TO-DVS_p automata, which send client messages as well as "info" and
// "registered" messages.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::spec {

/// The VS automaton of Figure 1.
class VsSpec {
 public:
  /// Constructs the initial state: created = {v0}; current-viewid[p] = g0 for
  /// p ∈ P0, ⊥ otherwise. `universe` is P (used to enumerate processes).
  VsSpec(ProcessSet universe, View v0);

  // ----- signature -------------------------------------------------------

  /// internal VS-CREATEVIEW(v).
  /// Pre: ∀w ∈ created: v.id > w.id.
  [[nodiscard]] bool can_createview(const View& v) const;
  void apply_createview(const View& v);

  /// Acceptor-only escape hatch: records v as created even when its id is
  /// not maximal. Sound for trace acceptance because VS's in-order creation
  /// constraint is schedulable independently of all other state (creations
  /// can always be replayed in id order ahead of their first NEWVIEW);
  /// requires only id uniqueness and a nonempty membership.
  void force_createview(const View& v);

  /// output VS-NEWVIEW(v)_p.
  /// Pre: v ∈ created ∧ v.id > current-viewid[p].  (p must be in v.set per
  /// the signature.)
  [[nodiscard]] bool can_newview(const View& v, ProcessId p) const;
  void apply_newview(const View& v, ProcessId p);

  /// input VS-GPSND(m)_p — always enabled.
  void apply_gpsnd(const Msg& m, ProcessId p);

  /// internal VS-ORDER(m, p, g). Pre: m is head of pending[p, g].
  /// We expose it keyed by (p, g); the ordered message is the head.
  [[nodiscard]] bool can_order(ProcessId p, const ViewId& g) const;
  void apply_order(ProcessId p, const ViewId& g);

  /// output VS-GPRCV(m)_{p,q} with the chosen g = current-viewid[q].
  /// Returns the (m, p) that would be delivered, if enabled.
  [[nodiscard]] std::optional<std::pair<Msg, ProcessId>> next_gprcv(
      ProcessId q) const;
  /// Applies the delivery; returns the delivered (m, p).
  std::pair<Msg, ProcessId> apply_gprcv(ProcessId q);

  /// output VS-SAFE(m)_{p,q} with chosen g = current-viewid[q], P = v.set of
  /// the created view with id g. Pre additionally requires
  /// ∀r ∈ P: next[r, g] > next-safe[q, g].
  [[nodiscard]] std::optional<std::pair<Msg, ProcessId>> next_safe_indication(
      ProcessId q) const;
  std::pair<Msg, ProcessId> apply_safe(ProcessId q);

  // ----- observers --------------------------------------------------------

  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const std::map<ViewId, View>& created() const {
    return created_;
  }
  [[nodiscard]] std::optional<ViewId> current_viewid(ProcessId p) const;
  [[nodiscard]] const std::deque<Msg>& pending(ProcessId p,
                                               const ViewId& g) const;
  [[nodiscard]] const std::vector<std::pair<Msg, ProcessId>>& queue(
      const ViewId& g) const;
  [[nodiscard]] std::size_t next(ProcessId p, const ViewId& g) const;
  [[nodiscard]] std::size_t next_safe(ProcessId p, const ViewId& g) const;

  /// Largest created view id (createview must exceed it).
  [[nodiscard]] ViewId max_created_id() const;

  /// Views p could currently be notified of (enabled newview targets).
  [[nodiscard]] std::vector<View> newview_candidates(ProcessId p) const;

  /// Checks Invariant 3.1 (unique ids among created views). With created_
  /// keyed by ViewId this holds by construction; the checker validates that
  /// insertion never silently merged distinct views.
  void check_invariants() const;

 private:
  ProcessSet universe_;

  // created ∈ 2^V, keyed by id; Invariant 3.1 makes the keying faithful.
  std::map<ViewId, View> created_;
  // current-viewid[p] ∈ G⊥.
  std::map<ProcessId, std::optional<ViewId>> current_viewid_;
  // pending[p, g] ∈ seqof(M).
  std::map<ProcessId, std::map<ViewId, std::deque<Msg>>> pending_;
  // queue[g] ∈ seqof(M × P).
  std::map<ViewId, std::vector<std::pair<Msg, ProcessId>>> queue_;
  // next[p, g], next-safe[p, g] ∈ N>0 (init 1). Stored sparsely.
  std::map<ProcessId, std::map<ViewId, std::size_t>> next_;
  std::map<ProcessId, std::map<ViewId, std::size_t>> next_safe_;
};

}  // namespace dvs::spec
