#include "spec/dvs_spec.h"

#include <algorithm>

#include "common/check.h"

namespace dvs::spec {
namespace {

template <typename Map, typename Key>
std::size_t counter_or_one(const Map& m, const Key& k) {
  auto it = m.find(k);
  return it == m.end() ? 1 : it->second;
}

const std::deque<ClientMsg> kEmptyPending;
const std::vector<std::pair<ClientMsg, ProcessId>> kEmptyQueue;
const ProcessSet kEmptySet;

}  // namespace

DvsSpec::DvsSpec(ProcessSet universe, View v0) : universe_(std::move(universe)) {
  created_.emplace(v0.id(), v0);
  for (ProcessId p : universe_) {
    current_viewid_[p] =
        v0.contains(p) ? std::optional<ViewId>{v0.id()} : std::nullopt;
  }
  // attempted[g0] and registered[g0] initialise to P0.
  attempted_[v0.id()] = v0.set();
  registered_[v0.id()] = v0.set();
}

bool DvsSpec::can_createview(const View& v) const {
  if (v.set().empty()) return false;
  if (created_.contains(v.id())) return false;  // ∀w: v.id ≠ w.id
  for (const auto& [wid, w] : created_) {
    const bool separated = wid < v.id() ? tot_reg_between(wid, v.id())
                                        : tot_reg_between(v.id(), wid);
    if (!separated && !intersects(v.set(), w.set())) return false;
  }
  return true;
}

void DvsSpec::apply_createview(const View& v) {
  DVS_REQUIRE("DVS-CREATEVIEW", can_createview(v), v.to_string());
  created_.emplace(v.id(), v);
}

bool DvsSpec::can_newview(const View& v, ProcessId p) const {
  if (!v.contains(p)) return false;
  auto it = created_.find(v.id());
  if (it == created_.end() || it->second != v) return false;
  const auto cur = current_viewid(p);
  if (cur.has_value()) {
    if (!(v.id() > *cur)) return false;
    // Corrected precondition: the client has consumed everything the node
    // received in the current view (drain-before-attempt).
    if (next(p, *cur) != received(p, *cur) + 1) return false;
  }
  return true;
}

bool DvsSpec::can_receive(ProcessId p, const ViewId& g) const {
  auto it = created_.find(g);
  if (it == created_.end() || !it->second.contains(p)) return false;
  const auto cur = current_viewid(p);
  if (cur.has_value() && *cur > g) return false;  // never after leaving
  return received(p, g) < queue(g).size();
}

void DvsSpec::apply_receive(ProcessId p, const ViewId& g) {
  DVS_REQUIRE("DVS-RECEIVE", can_receive(p, g),
              p.to_string() << " in " << g.to_string());
  received_[p][g] = received(p, g) + 1;
}

void DvsSpec::force_receive(ProcessId p, const ViewId& g) {
  auto it = created_.find(g);
  DVS_REQUIRE("DVS-RECEIVE(force)",
              it != created_.end() && it->second.contains(p) &&
                  received(p, g) < queue(g).size(),
              p.to_string() << " in " << g.to_string());
  received_[p][g] = received(p, g) + 1;
}

std::size_t DvsSpec::received(ProcessId p, const ViewId& g) const {
  auto pit = received_.find(p);
  if (pit == received_.end()) return 0;
  auto git = pit->second.find(g);
  return git == pit->second.end() ? 0 : git->second;
}

void DvsSpec::apply_newview(const View& v, ProcessId p) {
  DVS_REQUIRE("DVS-NEWVIEW", can_newview(v, p),
              v.to_string() << " at " << p.to_string());
  current_viewid_[p] = v.id();
  attempted_[v.id()].insert(p);
}

void DvsSpec::apply_register(ProcessId p) {
  const auto cur = current_viewid(p);
  if (cur.has_value()) {
    registered_[*cur].insert(p);
  }
}

void DvsSpec::apply_gpsnd(const ClientMsg& m, ProcessId p) {
  const auto cur = current_viewid(p);
  if (cur.has_value()) {
    pending_[p][*cur].push_back(m);
  }
}

bool DvsSpec::can_order(ProcessId p, const ViewId& g) const {
  return !pending(p, g).empty();
}

void DvsSpec::apply_order(ProcessId p, const ViewId& g) {
  DVS_REQUIRE("DVS-ORDER", can_order(p, g),
              p.to_string() << " in " << g.to_string());
  auto& pend = pending_[p][g];
  ClientMsg m = pend.front();
  pend.pop_front();
  queue_[g].emplace_back(std::move(m), p);
}

std::optional<std::pair<ClientMsg, ProcessId>> DvsSpec::next_gprcv(
    ProcessId q) const {
  const auto g = current_viewid(q);
  if (!g.has_value()) return std::nullopt;
  const auto& que = queue(*g);
  const std::size_t idx = next(q, *g);
  if (idx > que.size()) return std::nullopt;
  // Corrected: the client consumes only what the node has received.
  if (idx > received(q, *g)) return std::nullopt;
  return que[idx - 1];
}

std::pair<ClientMsg, ProcessId> DvsSpec::apply_gprcv(ProcessId q) {
  auto delivery = next_gprcv(q);
  DVS_REQUIRE("DVS-GPRCV", delivery.has_value(), "at " << q.to_string());
  const ViewId g = *current_viewid(q);
  next_[q][g] = next(q, g) + 1;
  return *delivery;
}

std::optional<std::pair<ClientMsg, ProcessId>> DvsSpec::next_safe_indication(
    ProcessId q) const {
  const auto g = current_viewid(q);
  if (!g.has_value()) return std::nullopt;
  auto it = created_.find(*g);
  if (it == created_.end()) return std::nullopt;
  const auto& que = queue(*g);
  const std::size_t idx = next_safe(q, *g);
  if (idx > que.size()) return std::nullopt;
  // Corrected: safe requires node-level receipt (received[r,g] ≥ idx) at
  // every *other* member instead of the printed client-level condition, but
  // keeps the printed condition locally (next[q,g] > idx): a client must
  // see a message before its safe indication, or it could act on a "stable"
  // message it has not processed — the TO application's exchange-safe logic
  // depends on exactly this local ordering.
  if (next(q, *g) <= idx) return std::nullopt;
  for (ProcessId r : it->second.set()) {
    if (received(r, *g) < idx) return std::nullopt;
  }
  return que[idx - 1];
}

std::pair<ClientMsg, ProcessId> DvsSpec::apply_safe(ProcessId q) {
  auto indication = next_safe_indication(q);
  DVS_REQUIRE("DVS-SAFE", indication.has_value(), "at " << q.to_string());
  const ViewId g = *current_viewid(q);
  next_safe_[q][g] = next_safe(q, g) + 1;
  return *indication;
}

std::vector<View> DvsSpec::att() const {
  std::vector<View> out;
  for (const auto& [g, v] : created_) {
    if (!attempted(g).empty()) out.push_back(v);
  }
  return out;
}

std::vector<View> DvsSpec::tot_att() const {
  std::vector<View> out;
  for (const auto& [g, v] : created_) {
    const ProcessSet& a = attempted(g);
    if (std::includes(a.begin(), a.end(), v.set().begin(), v.set().end())) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<View> DvsSpec::reg() const {
  std::vector<View> out;
  for (const auto& [g, v] : created_) {
    if (!registered(g).empty()) out.push_back(v);
  }
  return out;
}

std::vector<View> DvsSpec::tot_reg() const {
  std::vector<View> out;
  for (const auto& [g, v] : created_) {
    const ProcessSet& r = registered(g);
    if (std::includes(r.begin(), r.end(), v.set().begin(), v.set().end())) {
      out.push_back(v);
    }
  }
  return out;
}

bool DvsSpec::tot_reg_between(const ViewId& lo, const ViewId& hi) const {
  for (auto it = created_.upper_bound(lo); it != created_.end(); ++it) {
    if (!(it->first < hi)) break;
    const View& x = it->second;
    const ProcessSet& r = registered(x.id());
    if (std::includes(r.begin(), r.end(), x.set().begin(), x.set().end())) {
      return true;
    }
  }
  return false;
}

std::optional<ViewId> DvsSpec::current_viewid(ProcessId p) const {
  auto it = current_viewid_.find(p);
  return it == current_viewid_.end() ? std::nullopt : it->second;
}

const ProcessSet& DvsSpec::attempted(const ViewId& g) const {
  auto it = attempted_.find(g);
  return it == attempted_.end() ? kEmptySet : it->second;
}

const ProcessSet& DvsSpec::registered(const ViewId& g) const {
  auto it = registered_.find(g);
  return it == registered_.end() ? kEmptySet : it->second;
}

const std::deque<ClientMsg>& DvsSpec::pending(ProcessId p,
                                              const ViewId& g) const {
  auto pit = pending_.find(p);
  if (pit == pending_.end()) return kEmptyPending;
  auto git = pit->second.find(g);
  return git == pit->second.end() ? kEmptyPending : git->second;
}

const std::vector<std::pair<ClientMsg, ProcessId>>& DvsSpec::queue(
    const ViewId& g) const {
  auto it = queue_.find(g);
  return it == queue_.end() ? kEmptyQueue : it->second;
}

std::size_t DvsSpec::next(ProcessId p, const ViewId& g) const {
  auto pit = next_.find(p);
  if (pit == next_.end()) return 1;
  return counter_or_one(pit->second, g);
}

std::size_t DvsSpec::next_safe(ProcessId p, const ViewId& g) const {
  auto pit = next_safe_.find(p);
  if (pit == next_safe_.end()) return 1;
  return counter_or_one(pit->second, g);
}

std::vector<View> DvsSpec::newview_candidates(ProcessId p) const {
  std::vector<View> out;
  for (const auto& [g, v] : created_) {
    if (can_newview(v, p)) out.push_back(v);
  }
  return out;
}

void DvsSpec::check_invariants() const {
  // Invariant 4.1 (DVS): if v, w ∈ created, v.id < w.id, and there is no
  // x ∈ TotReg such that v.id < x.id < w.id, then v.set ∩ w.set ≠ {}.
  for (auto vit = created_.begin(); vit != created_.end(); ++vit) {
    for (auto wit = std::next(vit); wit != created_.end(); ++wit) {
      const View& v = vit->second;
      const View& w = wit->second;
      if (tot_reg_between(v.id(), w.id())) continue;
      DVS_INVARIANT("Invariant 4.1 (DVS)", intersects(v.set(), w.set()),
                    "created views " << v.to_string() << " and "
                                     << w.to_string()
                                     << " are disjoint with no intervening "
                                        "totally registered view");
    }
  }

  // Invariant 4.2 (DVS): if v ∈ created, w ∈ TotAtt, v.id < w.id, then
  // ∃p ∈ v.set with current-viewid[p] > v.id.
  const std::vector<View> totatt = tot_att();
  for (const auto& [gid, v] : created_) {
    const bool later_tot_att =
        std::any_of(totatt.begin(), totatt.end(),
                    [&](const View& w) { return v.id() < w.id(); });
    if (!later_tot_att) continue;
    const bool deactivated =
        std::any_of(v.set().begin(), v.set().end(), [&](ProcessId p) {
          const auto cur = current_viewid(p);
          return cur.has_value() && *cur > v.id();
        });
    DVS_INVARIANT("Invariant 4.2 (DVS)", deactivated,
                  "view " << v.to_string()
                          << " precedes a totally attempted view but no "
                             "member has advanced past it");
  }
}

}  // namespace dvs::spec
