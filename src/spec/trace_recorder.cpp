#include "spec/trace_recorder.h"

#include <sstream>

#include "common/check.h"

namespace dvs::spec {

TraceRecorder::TraceRecorder(ProcessSet universe, View v0,
                             TraceRecorderOptions options)
    : options_(options),
      vs_acceptor_(universe, v0),
      dvs_acceptor_(universe, v0),
      to_acceptor_(std::move(universe)) {}

void TraceRecorder::record(const VsEvent& event) {
  if (options_.keep_traces) vs_trace_.push_back(event);
  if (!options_.check_online || violation_.has_value()) return;
  const std::size_t index = vs_fed_++;
  ++events_checked_;
  const AcceptResult r = vs_acceptor_.feed(event);
  if (!r.ok) violation_ = TraceViolation{"VS", index, r.error};
}

void TraceRecorder::record(const DvsEvent& event) {
  if (options_.keep_traces) dvs_trace_.push_back(event);
  if (!options_.check_online || violation_.has_value()) return;
  const std::size_t index = dvs_fed_++;
  ++events_checked_;
  const AcceptResult r = dvs_acceptor_.feed(event);
  if (!r.ok) violation_ = TraceViolation{"DVS", index, r.error};
}

void TraceRecorder::record(const ToEvent& event) {
  if (options_.keep_traces) to_trace_.push_back(event);
  if (!options_.check_online || violation_.has_value()) return;
  const std::size_t index = to_fed_++;
  ++events_checked_;
  const AcceptResult r = to_acceptor_.feed(event);
  if (!r.ok) violation_ = TraceViolation{"TO", index, r.error};
}

bool TraceRecorder::check_invariants() {
  if (!options_.check_online || violation_.has_value()) return ok();
  ++invariant_checks_;
  try {
    dvs_acceptor_.spec().check_invariants();
  } catch (const InvariantViolation& e) {
    violation_ = TraceViolation{"DVS", dvs_fed_, e.what()};
  }
  return ok();
}

std::string TraceRecorder::tail(std::size_t max_per_layer) const {
  if (!options_.keep_traces) return {};
  std::ostringstream os;
  const auto dump = [&os, max_per_layer](const char* layer, const auto& trace) {
    os << layer << " trace (" << trace.size() << " events";
    const std::size_t start =
        trace.size() > max_per_layer ? trace.size() - max_per_layer : 0;
    if (start > 0) os << ", last " << (trace.size() - start);
    os << "):\n";
    for (std::size_t i = start; i < trace.size(); ++i) {
      os << "  #" << i << " " << to_string(trace[i]) << "\n";
    }
  };
  dump("VS", vs_trace_);
  dump("DVS", dvs_trace_);
  dump("TO", to_trace_);
  return os.str();
}

}  // namespace dvs::spec
