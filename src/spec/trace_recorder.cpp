#include "spec/trace_recorder.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace dvs::spec {

TraceRecorder::TraceRecorder(ProcessSet universe, View v0,
                             TraceRecorderOptions options)
    : options_(options),
      vs_acceptor_(universe, v0),
      dvs_acceptor_(universe, v0),
      to_acceptor_(std::move(universe)) {}

void TraceRecorder::record(const VsEvent& event) {
  if (options_.keep_traces) vs_trace_.push_back(event);
  if (!options_.check_online || violation_.has_value()) return;
  const std::size_t index = vs_fed_++;
  ++events_checked_;
  const AcceptResult r = vs_acceptor_.feed(event);
  if (!r.ok) violation_ = TraceViolation{"VS", index, r.error};
}

void TraceRecorder::record(const DvsEvent& event) {
  if (options_.keep_traces) dvs_trace_.push_back(event);
  if (!options_.check_online || violation_.has_value()) return;
  const std::size_t index = dvs_fed_++;
  ++events_checked_;
  const AcceptResult r = dvs_acceptor_.feed(event);
  if (!r.ok) violation_ = TraceViolation{"DVS", index, r.error};
}

void TraceRecorder::record(const ToEvent& event) {
  if (options_.keep_traces) to_trace_.push_back(event);
  if (!options_.check_online || violation_.has_value()) return;
  const std::size_t index = to_fed_++;
  ++events_checked_;
  const AcceptResult r = to_acceptor_.feed(event);
  if (!r.ok) violation_ = TraceViolation{"TO", index, r.error};
}

bool TraceRecorder::check_invariants() {
  if (!options_.check_online || violation_.has_value()) return ok();
  ++invariant_checks_;
  try {
    dvs_acceptor_.spec().check_invariants();
  } catch (const InvariantViolation& e) {
    violation_ = TraceViolation{"DVS", dvs_fed_, e.what()};
  }
  return ok();
}

void ShardedTraceRecorder::add_group(std::uint32_t g, ProcessSet universe,
                                     View v0, TraceRecorderOptions options) {
  const auto [it, inserted] = recorders_.try_emplace(
      g, std::move(universe), std::move(v0), options);
  if (!inserted) {
    throw std::logic_error("ShardedTraceRecorder: group " + std::to_string(g) +
                           " registered twice");
  }
}

bool ShardedTraceRecorder::check_invariants() {
  bool all_ok = true;
  for (auto& [g, rec] : recorders_) {
    if (!rec.check_invariants()) all_ok = false;
  }
  return all_ok;
}

bool ShardedTraceRecorder::ok() const {
  for (const auto& [g, rec] : recorders_) {
    if (!rec.ok()) return false;
  }
  return true;
}

std::optional<TraceViolation> ShardedTraceRecorder::violation() const {
  for (const auto& [g, rec] : recorders_) {
    if (rec.ok()) continue;
    TraceViolation v = *rec.violation();
    v.layer = "shard " + std::to_string(g) + " " + v.layer;
    return v;
  }
  return std::nullopt;
}

std::size_t ShardedTraceRecorder::events_checked() const {
  std::size_t total = 0;
  for (const auto& [g, rec] : recorders_) total += rec.events_checked();
  return total;
}

std::size_t ShardedTraceRecorder::invariant_checks() const {
  std::size_t total = 0;
  for (const auto& [g, rec] : recorders_) total += rec.invariant_checks();
  return total;
}

std::string TraceRecorder::tail(std::size_t max_per_layer) const {
  if (!options_.keep_traces) return {};
  std::ostringstream os;
  const auto dump = [&os, max_per_layer](const char* layer, const auto& trace) {
    os << layer << " trace (" << trace.size() << " events";
    const std::size_t start =
        trace.size() > max_per_layer ? trace.size() - max_per_layer : 0;
    if (start > 0) os << ", last " << (trace.size() - start);
    os << "):\n";
    for (std::size_t i = start; i < trace.size(); ++i) {
      os << "  #" << i << " " << to_string(trace[i]) << "\n";
    }
  };
  dump("VS", vs_trace_);
  dump("DVS", dvs_trace_);
  dump("TO", to_trace_);
  return os.str();
}

}  // namespace dvs::spec
