#include "spec/acceptors.h"

#include <type_traits>

namespace dvs::spec {
namespace {

template <typename MsgT>
bool msgs_equal(const MsgT& a, const MsgT& b) {
  return a == b;
}

}  // namespace

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::feed(const GroupEvent<MsgT>& event) {
  AcceptResult r = std::visit(
      [&](const auto& ev) -> AcceptResult {
        using E = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<E, EvGpsnd<MsgT>>) {
          return on_gpsnd(ev);
        } else if constexpr (std::is_same_v<E, EvGprcv<MsgT>>) {
          return on_gprcv(ev);
        } else if constexpr (std::is_same_v<E, EvSafe<MsgT>>) {
          return on_safe(ev);
        } else if constexpr (std::is_same_v<E, EvNewview>) {
          return on_newview(ev);
        } else {
          return on_register(ev);
        }
      },
      event);
  if (r.ok) {
    ++events_accepted_;
  } else {
    r.error += " [event #" + std::to_string(events_accepted_ + 1) + ": " +
               to_string(event) + "]";
  }
  return r;
}

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::feed_all(
    const std::vector<GroupEvent<MsgT>>& trace) {
  for (const auto& ev : trace) {
    AcceptResult r = feed(ev);
    if (!r.ok) return r;
  }
  return AcceptResult::accepted();
}

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::on_gpsnd(const EvGpsnd<MsgT>& ev) {
  spec_.apply_gpsnd(ev.m, ev.p);  // input action: always enabled
  return AcceptResult::accepted();
}

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::on_gprcv(const EvGprcv<MsgT>& ev) {
  const auto g = spec_.current_viewid(ev.receiver);
  if (!g.has_value()) {
    return AcceptResult::rejected("GPRCV at a process with no current view");
  }
  const auto& queue = spec_.queue(*g);
  const std::size_t idx = spec_.next(ev.receiver, *g);
  if (idx > queue.size()) {
    // This receiver is the first to commit position idx: the spec must order
    // the claimed sender's pending head now, and it must be this message.
    if (!spec_.can_order(ev.sender, *g)) {
      return AcceptResult::rejected(
          "delivery of a message the sender never sent in this view "
          "(pending empty)");
    }
    const auto& head = spec_.pending(ev.sender, *g).front();
    if (!msgs_equal(head, ev.m)) {
      return AcceptResult::rejected(
          "delivery violates sender FIFO: expected pending head " +
          dvs::to_string(head));
    }
    spec_.apply_order(ev.sender, *g);
  }
  const auto& entry = spec_.queue(*g)[idx - 1];
  if (entry.second != ev.sender || !msgs_equal(entry.first, ev.m)) {
    return AcceptResult::rejected(
        "delivery order diverges from the committed total order at position " +
        std::to_string(idx) + " (expected " + dvs::to_string(entry.first) +
        " from " + entry.second.to_string() + ")");
  }
  if constexpr (std::is_same_v<SpecT, DvsSpec>) {
    // Corrected DVS spec: insert the internal DVS-RECEIVE steps that carry
    // the node's receipt pointer up to this delivery.
    while (spec_.received(ev.receiver, *g) < idx) {
      spec_.apply_receive(ev.receiver, *g);
    }
  }
  spec_.apply_gprcv(ev.receiver);
  return AcceptResult::accepted();
}

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::on_safe(const EvSafe<MsgT>& ev) {
  if constexpr (std::is_same_v<SpecT, DvsSpec>) {
    // Corrected DVS spec: a safe indication may precede client deliveries.
    // Greedily order the message (if no receiver has committed its position
    // yet) and insert the internal DVS-RECEIVE steps at every member.
    const auto g = spec_.current_viewid(ev.receiver);
    if (!g.has_value()) {
      return AcceptResult::rejected("SAFE at a process with no current view");
    }
    const std::size_t idx = spec_.next_safe(ev.receiver, *g);
    if (idx > spec_.queue(*g).size()) {
      if (!spec_.can_order(ev.sender, *g)) {
        return AcceptResult::rejected(
            "SAFE for a message the sender never sent in this view");
      }
      if (!msgs_equal(spec_.pending(ev.sender, *g).front(), ev.m)) {
        return AcceptResult::rejected(
            "SAFE violates sender FIFO relative to the pending queue");
      }
      spec_.apply_order(ev.sender, *g);
    }
    auto vit = spec_.created().find(*g);
    if (vit != spec_.created().end()) {
      for (ProcessId r : vit->second.set()) {
        // Members still in g take ordinary DVS-RECEIVE steps; members that
        // have already moved on take the retroactive form (their receipt
        // happened while they were in g; see force_receive).
        while (spec_.received(r, *g) < idx &&
               spec_.received(r, *g) < spec_.queue(*g).size()) {
          if (spec_.can_receive(r, *g)) {
            spec_.apply_receive(r, *g);
          } else {
            spec_.force_receive(r, *g);
          }
        }
      }
    }
  }
  const auto indication = spec_.next_safe_indication(ev.receiver);
  if (!indication.has_value()) {
    return AcceptResult::rejected(
        "SAFE indication not enabled (view unknown, or not all members have "
        "received the message yet)");
  }
  if (indication->second != ev.sender || !msgs_equal(indication->first, ev.m)) {
    return AcceptResult::rejected(
        "SAFE indication out of order: spec expects " +
        dvs::to_string(indication->first) + " from " +
        indication->second.to_string());
  }
  spec_.apply_safe(ev.receiver);
  return AcceptResult::accepted();
}

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::on_newview(const EvNewview& ev) {
  const auto& created = spec_.created();
  auto it = created.find(ev.v.id());
  if (it == created.end()) {
    // First report of this view: the spec's internal CREATEVIEW is inserted
    // here. For DVS this greedy placement is the most permissive sound
    // choice (creating later maximizes TotReg and DVS permits out-of-order
    // ids). For VS, force_createview additionally allows an id smaller than
    // the maximum: the spec execution we exhibit schedules all CREATEVIEWs
    // in id order ahead of time, which is valid because created-ness has no
    // effect on any other state variable (see header commentary).
    if constexpr (std::is_same_v<SpecT, VsSpec>) {
      if (!spec_.can_createview(ev.v)) {
        if (created.contains(ev.v.id())) {
          return AcceptResult::rejected("duplicate view id " +
                                        ev.v.id().to_string());
        }
        spec_.force_createview(ev.v);
      } else {
        spec_.apply_createview(ev.v);
      }
    } else {
      if (!spec_.can_createview(ev.v)) {
        return AcceptResult::rejected(
            "DVS-CREATEVIEW precondition fails for " + ev.v.to_string() +
            ": view does not intersect some earlier view lacking an "
            "intervening totally registered view");
      }
      spec_.apply_createview(ev.v);
    }
  } else if (it->second != ev.v) {
    return AcceptResult::rejected("two distinct views share id " +
                                  ev.v.id().to_string());
  }
  if (!spec_.can_newview(ev.v, ev.p)) {
    return AcceptResult::rejected(
        "NEWVIEW not enabled: process not a member, or views reported out of "
        "id order at this process");
  }
  spec_.apply_newview(ev.v, ev.p);
  return AcceptResult::accepted();
}

template <typename SpecT, typename MsgT>
AcceptResult GroupAcceptor<SpecT, MsgT>::on_register(const EvRegister& ev) {
  if constexpr (std::is_same_v<SpecT, DvsSpec>) {
    spec_.apply_register(ev.p);
    return AcceptResult::accepted();
  } else {
    (void)ev;
    return AcceptResult::rejected("REGISTER is not part of the VS signature");
  }
}

template class GroupAcceptor<VsSpec, Msg>;
template class GroupAcceptor<DvsSpec, ClientMsg>;

AcceptResult ToAcceptor::feed(const ToEvent& event) {
  AcceptResult r = std::visit(
      [&](const auto& ev) -> AcceptResult {
        using E = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<E, EvBcast>) {
          spec_.apply_bcast(ev.a, ev.p);
          return AcceptResult::accepted();
        } else if constexpr (std::is_same_v<E, EvCrash>) {
          spec_.apply_crash(ev.p);
          return AcceptResult::accepted();
        } else if constexpr (std::is_same_v<E, EvHandoff>) {
          // A migrated slot may only claim deliveries the global order has
          // already established; claiming beyond it would be fabricated
          // state that no incarnation performed (split-brain evidence).
          if (!spec_.can_handoff(ev.next)) {
            return AcceptResult::rejected(
                "HANDOFF claims deliveries beyond the established total "
                "order (next=" + std::to_string(ev.next) + ", |queue|=" +
                std::to_string(spec_.queue().size()) + ")");
          }
          spec_.apply_handoff(ev.p, ev.next);
          return AcceptResult::accepted();
        } else {
          const std::size_t idx = spec_.next(ev.receiver);
          if (idx > spec_.queue().size()) {
            // Ordinary path: the delivery commits the sender's pending
            // head (FIFO). A broadcast stranded by a crash of its sender
            // (loose) may instead be ordered in any position — or never.
            if (spec_.can_order(ev.sender) &&
                spec_.pending(ev.sender).front() == ev.a) {
              spec_.apply_order(ev.sender);
            } else if (spec_.can_order_loose(ev.sender, ev.a)) {
              spec_.apply_order_loose(ev.sender, ev.a);
            } else if (!spec_.can_order(ev.sender)) {
              return AcceptResult::rejected(
                  "BRCV of a message never broadcast by the claimed sender");
            } else {
              return AcceptResult::rejected(
                  "BRCV violates sender FIFO: expected " +
                  spec_.pending(ev.sender).front().to_string());
            }
          }
          const auto& entry = spec_.queue()[idx - 1];
          if (entry.second != ev.sender || entry.first != ev.a) {
            return AcceptResult::rejected(
                "delivery diverges from the global total order at position " +
                std::to_string(idx) + " (expected " + entry.first.to_string() +
                " from " + entry.second.to_string() + ")");
          }
          spec_.apply_brcv(ev.receiver);
          return AcceptResult::accepted();
        }
      },
      event);
  if (r.ok) {
    ++events_accepted_;
  } else {
    r.error += " [event #" + std::to_string(events_accepted_ + 1) + ": " +
               to_string(event) + "]";
  }
  return r;
}

AcceptResult ToAcceptor::feed_all(const std::vector<ToEvent>& trace) {
  for (const auto& ev : trace) {
    AcceptResult r = feed(ev);
    if (!r.ok) return r;
  }
  return AcceptResult::accepted();
}

std::string to_string(const ToEvent& e) {
  struct Visitor {
    std::string operator()(const EvBcast& ev) const {
      return "bcast(" + ev.a.to_string() + ")_" + ev.p.to_string();
    }
    std::string operator()(const EvBrcv& ev) const {
      return "brcv(" + ev.a.to_string() + ")_" + ev.sender.to_string() + "," +
             ev.receiver.to_string();
    }
    std::string operator()(const EvCrash& ev) const {
      return "crash_" + ev.p.to_string();
    }
    std::string operator()(const EvHandoff& ev) const {
      return "handoff(next=" + std::to_string(ev.next) + ")_" +
             ev.p.to_string();
    }
  };
  return std::visit(Visitor{}, e);
}

}  // namespace dvs::spec
