// TraceRecorder: an always-on spec-conformance oracle for simulated runs.
//
// The distributed stack reports every externally visible action (VS / DVS /
// TO events) to a recorder, which feeds each event straight into the
// corresponding trace acceptor (VsAcceptor / DvsAcceptor / ToAcceptor) as
// the simulation executes. Any run with a recorder attached — chaos sweep,
// benchmark, demo — therefore doubles as a check that the execution is a
// trace of the Figure 1, Figure 2 and Figure 5 specifications; there is no
// separate "verification mode" to forget to enable.
//
// A rejection is sticky: the first violation freezes the oracle (acceptor
// state is unspecified after a rejection) and is reported with its layer,
// event index and the acceptor's diagnosis. The recorder can also re-check
// the DVS state Invariants 4.1/4.2 on demand against the acceptor's
// resolved spec state — the greedy acceptor maintains a concrete DvsSpec
// state, so the paper's state invariants are checkable mid-run, not just
// trace inclusion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "spec/acceptors.h"
#include "spec/events.h"

namespace dvs::spec {

/// The first conformance violation a recorder observed.
struct TraceViolation {
  std::string layer;  // "VS", "DVS" or "TO"
  std::size_t index = 0;  // 0-based index in that layer's event stream
  std::string error;  // acceptor diagnosis (embeds the offending event)

  [[nodiscard]] std::string to_string() const {
    return layer + " acceptor rejected event #" + std::to_string(index) +
           ": " + error;
  }
};

struct TraceRecorderOptions {
  /// Store the full event streams (needed for dumps and offline replay;
  /// costs memory on long runs).
  bool keep_traces = true;
  /// Feed the acceptors online. Off = plain recording, no oracle.
  bool check_online = true;
};

class TraceRecorder {
 public:
  TraceRecorder(ProcessSet universe, View v0,
                TraceRecorderOptions options = {});

  /// Record (and, when the oracle is on, check) one external event.
  void record(const VsEvent& event);
  void record(const DvsEvent& event);
  void record(const ToEvent& event);

  /// Re-checks DVS Invariants 4.1/4.2 on the acceptor's current resolved
  /// state. Returns false (and records the violation) on failure; true
  /// otherwise. No-op when the oracle is off or already tripped.
  bool check_invariants();

  [[nodiscard]] bool ok() const { return !violation_.has_value(); }
  [[nodiscard]] const std::optional<TraceViolation>& violation() const {
    return violation_;
  }

  /// Total events fed through the acceptors so far (the oracle's work
  /// count; deterministic per seed, aggregated by the chaos sweeps).
  [[nodiscard]] std::size_t events_checked() const { return events_checked_; }
  /// DVS invariant re-checks performed.
  [[nodiscard]] std::size_t invariant_checks() const {
    return invariant_checks_;
  }

  [[nodiscard]] const std::vector<VsEvent>& vs_trace() const {
    return vs_trace_;
  }
  [[nodiscard]] const std::vector<DvsEvent>& dvs_trace() const {
    return dvs_trace_;
  }
  [[nodiscard]] const std::vector<ToEvent>& to_trace() const {
    return to_trace_;
  }

  /// Printable tail (up to `max_per_layer` events per layer) of the stored
  /// traces, for failure reports. Empty when keep_traces is off.
  [[nodiscard]] std::string tail(std::size_t max_per_layer = 12) const;

 private:
  TraceRecorderOptions options_;
  VsAcceptor vs_acceptor_;
  DvsAcceptor dvs_acceptor_;
  ToAcceptor to_acceptor_;
  std::vector<VsEvent> vs_trace_;
  std::vector<DvsEvent> dvs_trace_;
  std::vector<ToEvent> to_trace_;
  std::size_t vs_fed_ = 0;
  std::size_t dvs_fed_ = 0;
  std::size_t to_fed_ = 0;
  std::size_t events_checked_ = 0;
  std::size_t invariant_checks_ = 0;
  std::optional<TraceViolation> violation_;
};

/// Per-group conformance for sharded runs: one independent TraceRecorder
/// (acceptor triple + Invariant 4.1/4.2 checks) per `group_id`, so events
/// of shard k are checked against shard k's own spec state and a violation
/// names its shard. Groups are registered up front (each may have its own
/// universe/v0 — the shard's provisioned replica set).
class ShardedTraceRecorder {
 public:
  /// Registers group `g`. Each group must be added exactly once before any
  /// record() for it.
  void add_group(std::uint32_t g, ProcessSet universe, View v0,
                 TraceRecorderOptions options = {});

  [[nodiscard]] bool has_group(std::uint32_t g) const {
    return recorders_.contains(g);
  }
  [[nodiscard]] TraceRecorder& group(std::uint32_t g) {
    return recorders_.at(g);
  }
  [[nodiscard]] const TraceRecorder& group(std::uint32_t g) const {
    return recorders_.at(g);
  }

  void record(std::uint32_t g, const VsEvent& event) {
    recorders_.at(g).record(event);
  }
  void record(std::uint32_t g, const DvsEvent& event) {
    recorders_.at(g).record(event);
  }
  void record(std::uint32_t g, const ToEvent& event) {
    recorders_.at(g).record(event);
  }

  /// Re-checks every group's DVS invariants; false if any group is (or
  /// becomes) violated.
  bool check_invariants();

  /// True iff every group's oracle is still clean.
  [[nodiscard]] bool ok() const;
  /// The first tripped group (lowest group id) and its violation, with the
  /// shard named in the message; nullopt when all clean.
  [[nodiscard]] std::optional<TraceViolation> violation() const;

  [[nodiscard]] std::size_t events_checked() const;
  [[nodiscard]] std::size_t invariant_checks() const;

 private:
  std::map<std::uint32_t, TraceRecorder> recorders_;
};

}  // namespace dvs::spec
