// Executable transcription of Figure 2: the DVS specification — a dynamic
// view-oriented group communication service that creates only primary views.
//
// Differences from VS (paper Section 4): DVS-REGISTER inputs record client
// readiness in registered[g]; attempted[g] records which processes have been
// told about each view; DVS-CREATEVIEW's precondition only admits views that
// intersect every created view not separated from them by a totally
// registered view. Messages are client messages Mc.
//
// CORRECTION (reproduction finding; see EXPERIMENTS.md E4/E5). The printed
// DVS-SAFE precondition, ∀r ∈ P: next[r,g] > next-safe[q,g], demands
// *client-level* delivery at every member before a safe indication. The
// Figure 3 implementation cannot guarantee that: it relays the underlying VS
// safe indication while other members may still hold the message in their
// msgs-from-vs buffers, so DVS-IMPL emits safes the printed spec forbids
// (the proof of Lemma 5.8 silently skips the DVS-SAFE case). We repair the
// spec with a node-level receipt counter:
//   * new state received[p,g] ∈ N (init 0), advanced by a new internal
//     action DVS-RECEIVE(p,g) with precondition p ∈ members(g) ∧
//     current-viewid[p] ≤ g ∧ received[p,g] < |queue[g]| — a node may
//     receive for its current client view or one it has not yet been told
//     about (its service runs ahead), but never for a view it has left;
//     receipt-after-leaving is what lets a "stable" message escape a
//     member's state exchange and break the TO application;
//   * DVS-GPRCV(m)_{p,q} additionally requires next[q,g] ≤ received[q,g]
//     (a client consumes only what its node has received);
//   * DVS-SAFE(m)_{p,q} requires ∀r ∈ P: received[r,g] ≥ next-safe[q,g]
//     instead of the printed next[r,g] condition for the *other* members,
//     but keeps next[q,g] > next-safe[q,g] at q itself — a client must see
//     a message before its safe indication (deliver-before-safe), which the
//     TO application's exchange-safe logic depends on;
//   * DVS-NEWVIEW(v)_p additionally requires that p's client has consumed
//     everything its node received in the current view:
//     next[p,g] = received[p,g] + 1 (for g = current-viewid[p] ≠ ⊥).
// The last clause (mirrored by a drain-before-attempt precondition in
// VS-TO-DVS) is what the TO application needs: a label confirmed via SAFE in
// a view is then guaranteed to be in the tentative order of every member
// that ever attempts a later view.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::spec {

/// The DVS automaton of Figure 2.
class DvsSpec {
 public:
  DvsSpec(ProcessSet universe, View v0);

  // ----- signature --------------------------------------------------------

  /// internal DVS-CREATEVIEW(v).
  /// Pre: ∀w ∈ created: v.id ≠ w.id, and ∀w ∈ created:
  ///   (∃x ∈ TotReg: w.id < x.id < v.id) ∨ (∃x ∈ TotReg: v.id < x.id < w.id)
  ///   ∨ v.set ∩ w.set ≠ {}.
  [[nodiscard]] bool can_createview(const View& v) const;
  void apply_createview(const View& v);

  /// output DVS-NEWVIEW(v)_p.
  /// Pre: v ∈ created ∧ v.id > current-viewid[p], p ∈ v.set, and (corrected;
  /// see header) p's client has consumed everything its node received in the
  /// current view.
  /// Eff: current-viewid[p] := v.id; attempted[v.id] ∪= {p}.
  [[nodiscard]] bool can_newview(const View& v, ProcessId p) const;
  void apply_newview(const View& v, ProcessId p);

  /// internal DVS-RECEIVE(p, g) (corrected spec; see header): node-level
  /// receipt of the next queued message of view g at p.
  /// Pre: p ∈ members(g) ∧ current-viewid[p] ≤ g ∧ received[p,g] < |queue[g]|.
  /// Eff: received[p,g] += 1.
  [[nodiscard]] bool can_receive(ProcessId p, const ViewId& g) const;
  void apply_receive(ProcessId p, const ViewId& g);
  [[nodiscard]] std::size_t received(ProcessId p, const ViewId& g) const;

  /// Acceptor-only escape hatch: advances received[p,g] for a member p of
  /// view g even if p's current view has moved on. Sound for greedy trace
  /// acceptance: the receipt really occurred while p was still in g (the
  /// underlying service only indicates safe after all members received in
  /// the view), but the acceptor orders queue entries lazily and may learn
  /// of the receipt only after observing p's later NEWVIEW.
  void force_receive(ProcessId p, const ViewId& g);

  /// input DVS-REGISTER_p — always enabled.
  void apply_register(ProcessId p);

  /// input DVS-GPSND(m)_p — always enabled.
  void apply_gpsnd(const ClientMsg& m, ProcessId p);

  /// internal DVS-ORDER(m, p, g), keyed by (p, g); m is the pending head.
  [[nodiscard]] bool can_order(ProcessId p, const ViewId& g) const;
  void apply_order(ProcessId p, const ViewId& g);

  /// output DVS-GPRCV(m)_{p,q}.
  [[nodiscard]] std::optional<std::pair<ClientMsg, ProcessId>> next_gprcv(
      ProcessId q) const;
  std::pair<ClientMsg, ProcessId> apply_gprcv(ProcessId q);

  /// output DVS-SAFE(m)_{p,q}.
  [[nodiscard]] std::optional<std::pair<ClientMsg, ProcessId>>
  next_safe_indication(ProcessId q) const;
  std::pair<ClientMsg, ProcessId> apply_safe(ProcessId q);

  // ----- derived variables (paper Figure 2) -------------------------------

  /// Att = {v ∈ created | attempted[v.id] ≠ {}}.
  [[nodiscard]] std::vector<View> att() const;
  /// TotAtt = {v ∈ created | v.set ⊆ attempted[v.id]}.
  [[nodiscard]] std::vector<View> tot_att() const;
  /// Reg = {v ∈ created | registered[v.id] ≠ {}}.
  [[nodiscard]] std::vector<View> reg() const;
  /// TotReg = {v ∈ created | v.set ⊆ registered[v.id]}.
  [[nodiscard]] std::vector<View> tot_reg() const;

  /// ∃x ∈ TotReg with lo < x.id < hi.
  [[nodiscard]] bool tot_reg_between(const ViewId& lo, const ViewId& hi) const;

  // ----- observers ---------------------------------------------------------

  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const std::map<ViewId, View>& created() const {
    return created_;
  }
  [[nodiscard]] std::optional<ViewId> current_viewid(ProcessId p) const;
  [[nodiscard]] const ProcessSet& attempted(const ViewId& g) const;
  [[nodiscard]] const ProcessSet& registered(const ViewId& g) const;
  [[nodiscard]] const std::deque<ClientMsg>& pending(ProcessId p,
                                                     const ViewId& g) const;
  [[nodiscard]] const std::vector<std::pair<ClientMsg, ProcessId>>& queue(
      const ViewId& g) const;
  [[nodiscard]] std::size_t next(ProcessId p, const ViewId& g) const;
  [[nodiscard]] std::size_t next_safe(ProcessId p, const ViewId& g) const;
  [[nodiscard]] std::vector<View> newview_candidates(ProcessId p) const;

  // Whole-map accessors (used by the refinement checker to snapshot states).
  [[nodiscard]] const std::map<ViewId, ProcessSet>& attempted_all() const {
    return attempted_;
  }
  [[nodiscard]] const std::map<ViewId, ProcessSet>& registered_all() const {
    return registered_;
  }
  [[nodiscard]] const std::map<ProcessId, std::map<ViewId, std::deque<ClientMsg>>>&
  pending_all() const {
    return pending_;
  }
  [[nodiscard]] const std::map<ViewId,
                               std::vector<std::pair<ClientMsg, ProcessId>>>&
  queue_all() const {
    return queue_;
  }
  [[nodiscard]] const std::map<ProcessId, std::map<ViewId, std::size_t>>&
  next_all() const {
    return next_;
  }
  [[nodiscard]] const std::map<ProcessId, std::map<ViewId, std::size_t>>&
  next_safe_all() const {
    return next_safe_;
  }
  [[nodiscard]] const std::map<ProcessId, std::map<ViewId, std::size_t>>&
  received_all() const {
    return received_;
  }

  /// Checks Invariants 4.1 and 4.2 on the current state; throws
  /// InvariantViolation with a full account on failure.
  void check_invariants() const;

 private:
  ProcessSet universe_;

  std::map<ViewId, View> created_;
  std::map<ProcessId, std::optional<ViewId>> current_viewid_;
  std::map<ViewId, std::vector<std::pair<ClientMsg, ProcessId>>> queue_;
  std::map<ViewId, ProcessSet> attempted_;
  std::map<ViewId, ProcessSet> registered_;
  std::map<ProcessId, std::map<ViewId, std::deque<ClientMsg>>> pending_;
  std::map<ProcessId, std::map<ViewId, std::size_t>> next_;
  std::map<ProcessId, std::map<ViewId, std::size_t>> next_safe_;
  // received[p,g] ∈ N, init 0 (corrected spec; node-level receipt count).
  std::map<ProcessId, std::map<ViewId, std::size_t>> received_;
};

}  // namespace dvs::spec
