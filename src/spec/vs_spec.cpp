#include "spec/vs_spec.h"

#include <algorithm>

#include "common/check.h"

namespace dvs::spec {
namespace {

template <typename Map, typename Key>
std::size_t counter_or_one(const Map& m, const Key& k) {
  auto it = m.find(k);
  return it == m.end() ? 1 : it->second;
}

const std::deque<Msg> kEmptyPending;
const std::vector<std::pair<Msg, ProcessId>> kEmptyQueue;

}  // namespace

VsSpec::VsSpec(ProcessSet universe, View v0) : universe_(std::move(universe)) {
  created_.emplace(v0.id(), v0);
  for (ProcessId p : universe_) {
    current_viewid_[p] =
        v0.contains(p) ? std::optional<ViewId>{v0.id()} : std::nullopt;
  }
}

bool VsSpec::can_createview(const View& v) const {
  if (v.set().empty()) return false;
  return std::all_of(created_.begin(), created_.end(), [&](const auto& entry) {
    return v.id() > entry.first;
  });
}

void VsSpec::apply_createview(const View& v) {
  DVS_REQUIRE("VS-CREATEVIEW", can_createview(v), v.to_string());
  created_.emplace(v.id(), v);
}

void VsSpec::force_createview(const View& v) {
  DVS_REQUIRE("VS-CREATEVIEW(force)",
              !created_.contains(v.id()) && !v.set().empty(), v.to_string());
  created_.emplace(v.id(), v);
}

bool VsSpec::can_newview(const View& v, ProcessId p) const {
  if (!v.contains(p)) return false;  // signature: p ∈ v.set
  auto it = created_.find(v.id());
  if (it == created_.end() || it->second != v) return false;  // v ∈ created
  const auto cur = current_viewid(p);
  return !cur.has_value() || v.id() > *cur;
}

void VsSpec::apply_newview(const View& v, ProcessId p) {
  DVS_REQUIRE("VS-NEWVIEW", can_newview(v, p),
              v.to_string() << " at " << p.to_string());
  current_viewid_[p] = v.id();
}

void VsSpec::apply_gpsnd(const Msg& m, ProcessId p) {
  const auto cur = current_viewid(p);
  if (cur.has_value()) {
    pending_[p][*cur].push_back(m);
  }
}

bool VsSpec::can_order(ProcessId p, const ViewId& g) const {
  return !pending(p, g).empty();
}

void VsSpec::apply_order(ProcessId p, const ViewId& g) {
  DVS_REQUIRE("VS-ORDER", can_order(p, g),
              p.to_string() << " in " << g.to_string());
  auto& pend = pending_[p][g];
  Msg m = pend.front();
  pend.pop_front();
  queue_[g].emplace_back(std::move(m), p);
}

std::optional<std::pair<Msg, ProcessId>> VsSpec::next_gprcv(
    ProcessId q) const {
  const auto g = current_viewid(q);
  if (!g.has_value()) return std::nullopt;
  const auto& que = queue(*g);
  const std::size_t idx = next(q, *g);  // 1-based
  if (idx > que.size()) return std::nullopt;
  return que[idx - 1];
}

std::pair<Msg, ProcessId> VsSpec::apply_gprcv(ProcessId q) {
  auto delivery = next_gprcv(q);
  DVS_REQUIRE("VS-GPRCV", delivery.has_value(), "at " << q.to_string());
  const ViewId g = *current_viewid(q);
  next_[q][g] = next(q, g) + 1;
  return *delivery;
}

std::optional<std::pair<Msg, ProcessId>> VsSpec::next_safe_indication(
    ProcessId q) const {
  const auto g = current_viewid(q);
  if (!g.has_value()) return std::nullopt;
  auto it = created_.find(*g);
  if (it == created_.end()) return std::nullopt;  // ⟨g, P⟩ ∈ created
  const auto& que = queue(*g);
  const std::size_t idx = next_safe(q, *g);
  if (idx > que.size()) return std::nullopt;
  // for all r ∈ P: next[r, g] > next-safe[q, g]
  for (ProcessId r : it->second.set()) {
    if (next(r, *g) <= idx) return std::nullopt;
  }
  return que[idx - 1];
}

std::pair<Msg, ProcessId> VsSpec::apply_safe(ProcessId q) {
  auto indication = next_safe_indication(q);
  DVS_REQUIRE("VS-SAFE", indication.has_value(), "at " << q.to_string());
  const ViewId g = *current_viewid(q);
  next_safe_[q][g] = next_safe(q, g) + 1;
  return *indication;
}

std::optional<ViewId> VsSpec::current_viewid(ProcessId p) const {
  auto it = current_viewid_.find(p);
  return it == current_viewid_.end() ? std::nullopt : it->second;
}

const std::deque<Msg>& VsSpec::pending(ProcessId p, const ViewId& g) const {
  auto pit = pending_.find(p);
  if (pit == pending_.end()) return kEmptyPending;
  auto git = pit->second.find(g);
  return git == pit->second.end() ? kEmptyPending : git->second;
}

const std::vector<std::pair<Msg, ProcessId>>& VsSpec::queue(
    const ViewId& g) const {
  auto it = queue_.find(g);
  return it == queue_.end() ? kEmptyQueue : it->second;
}

std::size_t VsSpec::next(ProcessId p, const ViewId& g) const {
  auto pit = next_.find(p);
  if (pit == next_.end()) return 1;
  return counter_or_one(pit->second, g);
}

std::size_t VsSpec::next_safe(ProcessId p, const ViewId& g) const {
  auto pit = next_safe_.find(p);
  if (pit == next_safe_.end()) return 1;
  return counter_or_one(pit->second, g);
}

ViewId VsSpec::max_created_id() const {
  return created_.rbegin()->first;  // created is never empty (holds v0)
}

std::vector<View> VsSpec::newview_candidates(ProcessId p) const {
  std::vector<View> out;
  for (const auto& [g, v] : created_) {
    if (can_newview(v, p)) out.push_back(v);
  }
  return out;
}

void VsSpec::check_invariants() const {
  // Invariant 3.1 (VS): v, v' ∈ created ∧ v.id = v'.id ⇒ v = v'. The map
  // keying enforces this structurally; verify membership sets are nonempty
  // as required by the definition of a view.
  for (const auto& [g, v] : created_) {
    DVS_INVARIANT("Invariant 3.1 (VS)", v.id() == g && !v.set().empty(),
                  "created view " << v.to_string() << " keyed by "
                                  << g.to_string());
  }
}

}  // namespace dvs::spec
