#include "impl/vs_to_dvs.h"

#include <algorithm>

#include "common/check.h"

namespace dvs::impl {
namespace {
const RingBuffer<Msg> kEmptyMsgs;
const RingBuffer<std::pair<ClientMsg, ProcessId>> kEmptyClientMsgs;
}  // namespace

VsToDvs::VsToDvs(ProcessId self, const View& v0, VsToDvsOptions options)
    : self_(self), options_(options), act_(v0) {
  learn_view(v0);
  if (v0.contains(self)) {
    cur_ = v0;
    client_cur_ = v0;
    attempted_.emplace(v0.id(), v0);
    reg_.insert(v0.id());
  }
}

void VsToDvs::learn_view(const View& v) { known_views_.emplace(v.id(), v); }

void VsToDvs::on_vs_newview(const View& v) {
  cur_ = v;
  learn_view(v);
  InfoRecord info{act_, amb_};
  msgs_to_vs_[v.id()].push_back(Msg{InfoMsg{
      act_, [&] {
        std::vector<View> amb_views;
        amb_views.reserve(amb_.size());
        for (const auto& [g, w] : amb_) amb_views.push_back(w);
        return amb_views;
      }()}});
  info_sent_[v.id()] = std::move(info);
}

void VsToDvs::on_vs_gprcv(const Msg& m, ProcessId q) {
  if (!cur_.has_value()) {
    // VS only delivers within views that include p, so p must have a current
    // view; defensive guard for harness bugs.
    throw PreconditionViolation("VS-GPRCV at a process with cur = ⊥");
  }
  const ViewId g = cur_->id();
  if (const auto* info = std::get_if<InfoMsg>(&m)) {
    InfoRecord rec;
    rec.act = info->act;
    for (const View& w : info->amb) rec.amb.emplace(w.id(), w);
    info_rcvd_[{g, q}] = rec;
    learn_view(info->act);
    for (const View& w : info->amb) learn_view(w);
    // if v.id > act.id then act := v
    if (info->act.id() > act_.id()) {
      act_ = info->act;
      if (durability_.on_act) durability_.on_act(act_);
    }
    // amb := {w ∈ amb ∪ V | w.id > act.id}
    for (const View& w : info->amb) {
      if (amb_.emplace(w.id(), w).second && durability_.on_amb_add) {
        durability_.on_amb_add(w);
      }
    }
    std::erase_if(amb_, [&](const auto& entry) {
      return !(entry.first > act_.id());
    });
  } else if (std::holds_alternative<RegisteredMsg>(m)) {
    rcvd_rgst_.insert({g, q});
  } else {
    msgs_from_vs_[g].emplace_back(to_client(m), q);
  }
}

void VsToDvs::on_vs_safe(const Msg& m, ProcessId q) {
  if (!cur_.has_value()) {
    throw PreconditionViolation("VS-SAFE at a process with cur = ⊥");
  }
  if (is_client(m)) {
    safe_from_vs_[cur_->id()].emplace_back(to_client(m), q);
  }
  // "info" and "registered" safe indications: Eff: none.
}

void VsToDvs::on_dvs_gpsnd(const ClientMsg& m) {
  if (client_cur_.has_value()) {
    msgs_to_vs_[client_cur_->id()].push_back(to_msg(m));
  }
}

void VsToDvs::on_dvs_register() {
  if (client_cur_.has_value()) {
    if (reg_.insert(client_cur_->id()).second && durability_.on_register) {
      durability_.on_register(client_cur_->id());
    }
    msgs_to_vs_[client_cur_->id()].push_back(Msg{RegisteredMsg{}});
  }
}

std::optional<Msg> VsToDvs::next_vs_gpsnd() const {
  if (!cur_.has_value()) return std::nullopt;
  const auto& queue = msgs_to_vs(cur_->id());
  if (queue.empty()) return std::nullopt;
  return queue.front();
}

Msg VsToDvs::take_vs_gpsnd() {
  auto m = next_vs_gpsnd();
  DVS_REQUIRE("VS-GPSND", m.has_value(), "at " << self_.to_string());
  msgs_to_vs_[cur_->id()].pop_front();
  return *m;
}

bool VsToDvs::can_dvs_newview() const {
  if (!cur_.has_value()) return false;
  const View& v = *cur_;
  // v.id > client-cur.id (⊥ compares below everything).
  if (client_cur_.has_value() && !(v.id() > client_cur_->id())) return false;
  // Drain-before-attempt (correction; see spec/dvs_spec.h): the client must
  // have consumed every buffered delivery and safe indication of its current
  // view before moving on — otherwise a label confirmed elsewhere via SAFE
  // could be missing from this node's state at the next state exchange,
  // which breaks the totally-ordered-broadcast application.
  if (client_cur_.has_value() && !options_.printed_figure_mode) {
    if (!msgs_from_vs(client_cur_->id()).empty()) return false;
    if (!safe_from_vs(client_cur_->id()).empty()) return false;
  }
  // ∀q ∈ v.set, q ≠ p: info-rcvd[q, v.id] ≠ ⊥.
  for (ProcessId q : v.set()) {
    if (q != self_ && !info_rcvd_.contains({v.id(), q})) return false;
  }
  // ∀w ∈ use: |v.set ∩ w.set| > |w.set| / 2 (weighted generalization when
  // vote weights are configured).
  auto has_majority = [&](const ProcessSet& w_set) {
    return options_.weights.empty()
               ? majority_of(v.set(), w_set)
               : weighted_majority_of(v.set(), w_set, options_.weights);
  };
  if (!has_majority(act_.set())) return false;
  return std::all_of(amb_.begin(), amb_.end(), [&](const auto& entry) {
    return has_majority(entry.second.set());
  });
}

View VsToDvs::apply_dvs_newview() {
  DVS_REQUIRE("DVS-NEWVIEW", can_dvs_newview(), "at " << self_.to_string());
  const View v = *cur_;
  if (amb_.emplace(v.id(), v).second && durability_.on_amb_add) {
    durability_.on_amb_add(v);
  }
  if (attempted_.emplace(v.id(), v).second && durability_.on_attempt) {
    durability_.on_attempt(v);
  }
  client_cur_ = v;
  return v;
}

std::optional<std::pair<ClientMsg, ProcessId>> VsToDvs::next_dvs_gprcv()
    const {
  if (!client_cur_.has_value()) return std::nullopt;
  const auto& queue = msgs_from_vs(client_cur_->id());
  if (queue.empty()) return std::nullopt;
  return queue.front();
}

std::pair<ClientMsg, ProcessId> VsToDvs::take_dvs_gprcv() {
  auto m = next_dvs_gprcv();
  DVS_REQUIRE("DVS-GPRCV", m.has_value(), "at " << self_.to_string());
  msgs_from_vs_[client_cur_->id()].pop_front();
  ++delivered_count_[client_cur_->id()];
  return *m;
}

std::optional<std::pair<ClientMsg, ProcessId>> VsToDvs::next_dvs_safe() const {
  if (!client_cur_.has_value()) return std::nullopt;
  const ViewId g = client_cur_->id();
  const auto& queue = safe_from_vs(g);
  if (queue.empty()) return std::nullopt;
  // Deliver-before-safe: the k-th safe indication may only follow the k-th
  // client delivery of this view.
  auto count_of = [](const std::map<ViewId, std::size_t>& m, const ViewId& g2) {
    auto it = m.find(g2);
    return it == m.end() ? std::size_t{0} : it->second;
  };
  if (!options_.printed_figure_mode &&
      count_of(safe_count_, g) >= count_of(delivered_count_, g)) {
    return std::nullopt;
  }
  return queue.front();
}

std::pair<ClientMsg, ProcessId> VsToDvs::take_dvs_safe() {
  auto m = next_dvs_safe();
  DVS_REQUIRE("DVS-SAFE", m.has_value(), "at " << self_.to_string());
  safe_from_vs_[client_cur_->id()].pop_front();
  ++safe_count_[client_cur_->id()];
  return *m;
}

std::optional<Msg> VsToDvs::poll_vs_gpsnd() {
  if (!cur_.has_value()) return std::nullopt;
  auto it = msgs_to_vs_.find(cur_->id());
  if (it == msgs_to_vs_.end() || it->second.empty()) return std::nullopt;
  Msg m = std::move(it->second.front());
  it->second.pop_front();
  return m;
}

std::optional<std::pair<ClientMsg, ProcessId>> VsToDvs::poll_dvs_gprcv() {
  if (!client_cur_.has_value()) return std::nullopt;
  auto it = msgs_from_vs_.find(client_cur_->id());
  if (it == msgs_from_vs_.end() || it->second.empty()) return std::nullopt;
  std::pair<ClientMsg, ProcessId> m = std::move(it->second.front());
  it->second.pop_front();
  ++delivered_count_[client_cur_->id()];
  return m;
}

std::optional<std::pair<ClientMsg, ProcessId>> VsToDvs::poll_dvs_safe() {
  if (!client_cur_.has_value()) return std::nullopt;
  const ViewId g = client_cur_->id();
  auto it = safe_from_vs_.find(g);
  if (it == safe_from_vs_.end() || it->second.empty()) return std::nullopt;
  if (!options_.printed_figure_mode) {
    auto count_of = [](const std::map<ViewId, std::size_t>& m,
                       const ViewId& g2) {
      auto cit = m.find(g2);
      return cit == m.end() ? std::size_t{0} : cit->second;
    };
    if (count_of(safe_count_, g) >= count_of(delivered_count_, g)) {
      return std::nullopt;
    }
  }
  std::pair<ClientMsg, ProcessId> m = std::move(it->second.front());
  it->second.pop_front();
  ++safe_count_[g];
  return m;
}

std::vector<View> VsToDvs::gc_candidates() const {
  std::vector<View> out;
  for (const auto& [g, v] : known_views_) {
    if (can_garbage_collect(v)) out.push_back(v);
  }
  return out;
}

bool VsToDvs::can_garbage_collect(const View& v) const {
  if (!(v.id() > act_.id())) return false;
  return std::all_of(v.set().begin(), v.set().end(), [&](ProcessId q) {
    return rcvd_rgst_.contains({v.id(), q});
  });
}

void VsToDvs::apply_garbage_collect(const View& v) {
  DVS_REQUIRE("DVS-GARBAGE-COLLECT", can_garbage_collect(v),
              v.to_string() << " at " << self_.to_string());
  act_ = v;
  if (durability_.on_act) durability_.on_act(act_);
  std::erase_if(amb_,
                [&](const auto& entry) { return !(entry.first > act_.id()); });
}

void VsToDvs::set_durability_hooks(DvsDurabilityHooks hooks) {
  durability_ = std::move(hooks);
}

void VsToDvs::restore(const DvsDurableState& recovered) {
  act_ = recovered.act;
  amb_ = recovered.amb;
  attempted_ = recovered.attempted;
  reg_ = recovered.reg;
  // amb only keeps views above act (replay may have interleaved adds and
  // act advances; the prune is derived state, never journaled).
  std::erase_if(amb_,
                [&](const auto& entry) { return !(entry.first > act_.id()); });
  cur_ = std::nullopt;
  client_cur_ = std::nullopt;
  learn_view(act_);
  for (const auto& [g, w] : amb_) learn_view(w);
  for (const auto& [g, w] : attempted_) learn_view(w);
}

DvsDurableState VsToDvs::durable_state() const {
  return DvsDurableState{act_, amb_, attempted_, reg_};
}

std::vector<View> VsToDvs::use() const {
  std::vector<View> out;
  out.push_back(act_);
  for (const auto& [g, w] : amb_) out.push_back(w);
  return out;
}

std::optional<InfoRecord> VsToDvs::info_sent(const ViewId& g) const {
  auto it = info_sent_.find(g);
  if (it == info_sent_.end()) return std::nullopt;
  return it->second;
}

std::optional<InfoRecord> VsToDvs::info_rcvd(ProcessId q,
                                             const ViewId& g) const {
  auto it = info_rcvd_.find({g, q});
  if (it == info_rcvd_.end()) return std::nullopt;
  return it->second;
}

bool VsToDvs::rcvd_rgst(const ViewId& g, ProcessId q) const {
  return rcvd_rgst_.contains({g, q});
}

const RingBuffer<Msg>& VsToDvs::msgs_to_vs(const ViewId& g) const {
  auto it = msgs_to_vs_.find(g);
  return it == msgs_to_vs_.end() ? kEmptyMsgs : it->second;
}

const RingBuffer<std::pair<ClientMsg, ProcessId>>& VsToDvs::msgs_from_vs(
    const ViewId& g) const {
  auto it = msgs_from_vs_.find(g);
  return it == msgs_from_vs_.end() ? kEmptyClientMsgs : it->second;
}

const RingBuffer<std::pair<ClientMsg, ProcessId>>& VsToDvs::safe_from_vs(
    const ViewId& g) const {
  auto it = safe_from_vs_.find(g);
  return it == safe_from_vs_.end() ? kEmptyClientMsgs : it->second;
}

}  // namespace dvs::impl
