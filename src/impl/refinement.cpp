#include "impl/refinement.h"

#include <sstream>

#include "common/check.h"

namespace dvs::impl {
namespace {

/// purge: client messages of a mixed queue, in order. Generic over the
/// queue type: the automaton's per-view queues are RingBuffers, the VS
/// spec's pending queues are still deques.
template <typename Queue>
std::vector<ClientMsg> purge(const Queue& msgs) {
  std::vector<ClientMsg> out;
  for (const Msg& m : msgs) {
    if (is_client(m)) out.push_back(to_client(m));
  }
  return out;
}

std::vector<std::pair<ClientMsg, ProcessId>> purge_queue(
    const std::vector<std::pair<Msg, ProcessId>>& queue) {
  std::vector<std::pair<ClientMsg, ProcessId>> out;
  for (const auto& [m, p] : queue) {
    if (is_client(m)) out.emplace_back(to_client(m), p);
  }
  return out;
}

/// purgesize of queue(1..prefix_len): the number of non-client messages in
/// the first prefix_len entries.
std::size_t purgesize_prefix(const std::vector<std::pair<Msg, ProcessId>>& q,
                             std::size_t prefix_len) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < prefix_len && i < q.size(); ++i) {
    if (!is_client(q[i].first)) ++count;
  }
  return count;
}

}  // namespace

std::string DvsState::diff(const DvsState& a, const DvsState& b) {
  std::ostringstream os;
  if (a.created != b.created) {
    os << "created differs: |a|=" << a.created.size()
       << " |b|=" << b.created.size();
  } else if (a.current_viewid != b.current_viewid) {
    os << "current-viewid differs";
    for (const auto& [p, g] : a.current_viewid) {
      auto it = b.current_viewid.find(p);
      const bool same = it != b.current_viewid.end() && it->second == g;
      if (!same) {
        os << " at " << p.to_string();
        break;
      }
    }
  } else if (a.attempted != b.attempted) {
    os << "attempted differs";
  } else if (a.registered != b.registered) {
    os << "registered differs";
  } else if (a.pending != b.pending) {
    os << "pending differs";
    for (const auto& [key, msgs] : a.pending) {
      auto it = b.pending.find(key);
      if (it == b.pending.end() || it->second != msgs) {
        os << " at (" << key.first.to_string() << "," << key.second.to_string()
           << "): a has " << msgs.size() << " entries, b has "
           << (it == b.pending.end() ? 0 : it->second.size());
        break;
      }
    }
  } else if (a.queue != b.queue) {
    os << "queue differs";
  } else if (a.next != b.next) {
    os << "next differs";
  } else if (a.next_safe != b.next_safe) {
    os << "next-safe differs";
  } else if (a.received != b.received) {
    os << "received differs";
  } else {
    return "";
  }
  return os.str();
}

DvsState snapshot(const spec::DvsSpec& spec) {
  DvsState t;
  t.created = spec.created();
  for (ProcessId p : spec.universe()) {
    t.current_viewid[p] = spec.current_viewid(p);
  }
  for (const auto& [g, members] : spec.attempted_all()) {
    if (!members.empty()) t.attempted[g] = members;
  }
  for (const auto& [g, members] : spec.registered_all()) {
    if (!members.empty()) t.registered[g] = members;
  }
  for (const auto& [p, per_view] : spec.pending_all()) {
    for (const auto& [g, msgs] : per_view) {
      if (!msgs.empty()) {
        t.pending[{p, g}] = std::vector<ClientMsg>(msgs.begin(), msgs.end());
      }
    }
  }
  for (const auto& [g, q] : spec.queue_all()) {
    if (!q.empty()) t.queue[g] = q;
  }
  for (const auto& [p, per_view] : spec.next_all()) {
    for (const auto& [g, n] : per_view) {
      if (n != 1) t.next[{p, g}] = n;
    }
  }
  for (const auto& [p, per_view] : spec.next_safe_all()) {
    for (const auto& [g, n] : per_view) {
      if (n != 1) t.next_safe[{p, g}] = n;
    }
  }
  for (const auto& [p, per_view] : spec.received_all()) {
    for (const auto& [g, n] : per_view) {
      if (n != 0) t.received[{p, g}] = n;
    }
  }
  return t;
}

DvsState refinement(const DvsImplSystem& sys) {
  DvsState t;
  // created = ∪_p attempted_p.
  for (ProcessId p : sys.universe()) {
    for (const auto& [g, v] : sys.node(p).attempted()) {
      t.created.emplace(g, v);
    }
  }
  // current-viewid[p] = client-cur.id_p; attempted[g]; registered[g].
  for (ProcessId p : sys.universe()) {
    const VsToDvs& node = sys.node(p);
    t.current_viewid[p] = node.client_cur().has_value()
                              ? std::optional<ViewId>{node.client_cur()->id()}
                              : std::nullopt;
    for (const auto& [g, v] : node.attempted()) t.attempted[g].insert(p);
    for (const ViewId& g : node.reg_set()) t.registered[g].insert(p);
  }
  // The view ids along which client traffic can exist: every VS-created id
  // (VS pending/queue are indexed by them) plus every attempted id
  // (msgs-to-vs is indexed by client views).
  std::set<ViewId> gids;
  for (const auto& [g, v] : sys.vs().created()) gids.insert(g);
  for (const auto& [g, v] : t.created) gids.insert(g);

  for (const ViewId& g : gids) {
    const auto q = purge_queue(sys.vs().queue(g));
    if (!q.empty()) t.queue[g] = q;
    for (ProcessId p : sys.universe()) {
      const VsToDvs& node = sys.node(p);
      // pending[p,g] = purge(vs.pending) + purge(msgs-to-vs).
      std::vector<ClientMsg> pend = purge(sys.vs().pending(p, g));
      for (const ClientMsg& m : purge(node.msgs_to_vs(g))) pend.push_back(m);
      if (!pend.empty()) t.pending[{p, g}] = std::move(pend);
      // next / next-safe corrections.
      const std::size_t impl_next = sys.vs().next(p, g);
      const std::size_t spec_next =
          impl_next - purgesize_prefix(sys.vs().queue(g), impl_next - 1) -
          node.msgs_from_vs(g).size();
      if (spec_next != 1) t.next[{p, g}] = spec_next;
      const std::size_t impl_safe = sys.vs().next_safe(p, g);
      const std::size_t spec_safe =
          impl_safe - purgesize_prefix(sys.vs().queue(g), impl_safe - 1) -
          node.safe_from_vs(g).size();
      if (spec_safe != 1) t.next_safe[{p, g}] = spec_safe;
      const std::size_t node_received =
          impl_next - 1 - purgesize_prefix(sys.vs().queue(g), impl_next - 1);
      if (node_received != 0) t.received[{p, g}] = node_received;
    }
  }
  return t;
}

RefinementChecker::RefinementChecker(const DvsImplSystem& initial)
    : shadow_(initial.universe(), initial.v0()) {}

RefinementResult RefinementChecker::step(DvsImplSystem& sys,
                                         const DvsImplAction& action) {
  // Capture the pre-state facts the mapping needs.
  std::optional<std::pair<ClientMsg, ProcessId>> ordered_client;
  if (action.kind == DvsImplActionKind::kVsOrder) {
    const auto& pend = sys.vs().pending(*action.from, *action.gid);
    if (!pend.empty() && is_client(pend.front())) {
      ordered_client = {to_client(pend.front()), *action.from};
    }
  }
  // A VS-GPRCV that hands a client message to the node maps to the spec's
  // internal DVS-RECEIVE (node-level receipt, corrected spec).
  std::optional<ViewId> received_gid;
  if (action.kind == DvsImplActionKind::kVsGprcv) {
    const auto delivery = sys.vs().next_gprcv(action.p);
    if (delivery.has_value() && is_client(delivery->first)) {
      received_gid = sys.vs().current_viewid(action.p);
    }
  }

  const std::optional<spec::DvsEvent> event = sys.apply(action);
  ++steps_checked_;

  auto fail = [&](const std::string& why) {
    RefinementResult r;
    r.ok = false;
    r.error = "refinement failure at step " + std::to_string(steps_checked_) +
              " (" + action.to_string() + "): " + why;
    r.event = event;
    return r;
  };

  switch (action.kind) {
    case DvsImplActionKind::kVsOrder:
      if (ordered_client.has_value()) {
        if (!shadow_.can_order(ordered_client->second, *action.gid)) {
          return fail("DVS-ORDER not enabled in the spec");
        }
        const ClientMsg& head =
            shadow_.pending(ordered_client->second, *action.gid).front();
        if (!(head == ordered_client->first)) {
          return fail("spec pending head differs from the ordered message");
        }
        shadow_.apply_order(ordered_client->second, *action.gid);
      }
      break;
    case DvsImplActionKind::kDvsGpsnd:
      shadow_.apply_gpsnd(*action.msg, action.p);
      break;
    case DvsImplActionKind::kDvsRegister:
      shadow_.apply_register(action.p);
      break;
    case DvsImplActionKind::kDvsNewview: {
      const View& v = *action.view;
      if (!shadow_.created().contains(v.id())) {
        if (!shadow_.can_createview(v)) {
          return fail(
              "DVS-CREATEVIEW precondition fails in the spec — the paper "
              "derives it from Invariant 5.6");
        }
        shadow_.apply_createview(v);
      }
      if (!shadow_.can_newview(v, action.p)) {
        return fail("DVS-NEWVIEW precondition fails in the spec");
      }
      shadow_.apply_newview(v, action.p);
      break;
    }
    case DvsImplActionKind::kDvsGprcv: {
      const auto& ev = std::get<spec::EvGprcv<ClientMsg>>(*event);
      const auto expected = shadow_.next_gprcv(action.p);
      if (!expected.has_value() || expected->second != ev.sender ||
          !(expected->first == ev.m)) {
        return fail("DVS-GPRCV not enabled or delivers a different message");
      }
      shadow_.apply_gprcv(action.p);
      break;
    }
    case DvsImplActionKind::kDvsSafe: {
      const auto& ev = std::get<spec::EvSafe<ClientMsg>>(*event);
      const auto expected = shadow_.next_safe_indication(action.p);
      if (!expected.has_value() || expected->second != ev.sender ||
          !(expected->first == ev.m)) {
        return fail("DVS-SAFE not enabled or indicates a different message");
      }
      shadow_.apply_safe(action.p);
      break;
    }
    case DvsImplActionKind::kVsGprcv:
      if (received_gid.has_value()) {
        if (!shadow_.can_receive(action.p, *received_gid)) {
          return fail("DVS-RECEIVE not enabled in the spec");
        }
        shadow_.apply_receive(action.p, *received_gid);
      }
      break;
    case DvsImplActionKind::kVsCreateview:
    case DvsImplActionKind::kVsNewview:
    case DvsImplActionKind::kVsSafe:
    case DvsImplActionKind::kVsGpsnd:
    case DvsImplActionKind::kGarbageCollect:
      // Internal to the implementation; the spec takes no step, so ℱ must be
      // unchanged — verified by the snapshot comparison below.
      break;
  }

  const DvsState expected = refinement(sys);
  const DvsState actual = snapshot(shadow_);
  if (!(expected == actual)) {
    return fail("ℱ(impl state) diverges from the shadow spec state: " +
                DvsState::diff(actual, expected));
  }
  RefinementResult ok;
  ok.event = event;
  return ok;
}

}  // namespace dvs::impl
