// DVS-IMPL: the composition of the VS specification automaton with one
// VS-TO-DVS_p automaton per processor, with all VS actions hidden
// (paper Section 5.1).
//
// The class enumerates the enabled actions of the composed automaton so a
// scheduler can explore executions, exposes the derived variables Att,
// TotAtt, Reg and TotReg, and implements checkers for Invariants 5.1–5.6.
//
// Two of the paper's invariants are falsifiable exactly as printed
// (5.2(3) and 5.3(1)); the executable checkers found reachable
// counterexamples, reproduced as unit tests. check_invariants() verifies
// corrected forms that are reachable-state-true and still support the
// paper's proofs; check_invariant_5_2_3_literal / 5_3_1_literal implement
// the printed statements so the counterexamples stay documented. See
// EXPERIMENTS.md E4 for the analysis.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"
#include "impl/vs_to_dvs.h"
#include "spec/events.h"
#include "spec/vs_spec.h"

namespace dvs::impl {

enum class DvsImplActionKind {
  // VS specification moves (hidden in the composition).
  kVsCreateview,
  kVsNewview,
  kVsOrder,
  kVsGprcv,
  kVsSafe,
  // VS-TO-DVS_p output feeding VS.
  kVsGpsnd,
  // VS-TO-DVS_p outputs / internal actions.
  kDvsNewview,
  kDvsGprcv,
  kDvsSafe,
  kGarbageCollect,
  // Environment inputs.
  kDvsGpsnd,
  kDvsRegister,
};

[[nodiscard]] const char* to_string(DvsImplActionKind kind);

/// One transition of the composed automaton, with its parameters.
struct DvsImplAction {
  DvsImplActionKind kind{};
  ProcessId p{};                  // acting processor
  std::optional<View> view;       // createview / newview / garbage-collect
  std::optional<ViewId> gid;      // vs-order view id
  std::optional<ProcessId> from;  // vs-order sender
  std::optional<ClientMsg> msg;   // dvs-gpsnd payload

  [[nodiscard]] std::string to_string() const;

  // Factories for the common shapes.
  static DvsImplAction make(DvsImplActionKind kind, ProcessId p);
  static DvsImplAction with_view(DvsImplActionKind kind, ProcessId p, View v);
  static DvsImplAction order(ProcessId sender, ViewId g);
  static DvsImplAction send(ProcessId p, ClientMsg m);
};

/// The composed system.
class DvsImplSystem {
 public:
  /// All processes in `universe` exist from the start; those in v0.set are
  /// the initial members. `node_options` is forwarded to every VS-TO-DVS_p
  /// (mutation-testing switches; see VsToDvsOptions).
  DvsImplSystem(ProcessSet universe, View v0,
                VsToDvsOptions node_options = {});

  // ----- action interface --------------------------------------------------

  /// Enumerates every enabled non-environment action (VS moves, VS-TO-DVS
  /// outputs, garbage collection). Environment inputs (kDvsGpsnd,
  /// kDvsRegister, and kVsCreateview candidates) are chosen by the caller.
  [[nodiscard]] std::vector<DvsImplAction> enabled_actions() const;

  /// VS-CREATEVIEW is internal to VS but its view parameter is
  /// unconstrained; callers propose candidates.
  [[nodiscard]] bool can_vs_createview(const View& v) const;

  /// Applies the action; returns the resulting external DVS event if the
  /// action is external, nullopt for internal actions. Throws
  /// PreconditionViolation if the action is not enabled.
  std::optional<spec::DvsEvent> apply(const DvsImplAction& action);

  // ----- state access -------------------------------------------------------

  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const View& v0() const { return v0_; }
  [[nodiscard]] const spec::VsSpec& vs() const { return vs_; }
  [[nodiscard]] const VsToDvs& node(ProcessId p) const { return nodes_.at(p); }

  // ----- derived variables (Section 5.1) ------------------------------------

  /// created: the views created by the underlying VS service.
  [[nodiscard]] std::vector<View> created() const;
  /// Att = {v ∈ created | ∃p ∈ v.set: v ∈ attempted_p}.
  [[nodiscard]] std::vector<View> att() const;
  /// TotAtt = {v ∈ created | ∀p ∈ v.set: v ∈ attempted_p}.
  [[nodiscard]] std::vector<View> tot_att() const;
  /// Reg = {v ∈ created | ∃p ∈ v.set: reg[v.id]_p}.
  [[nodiscard]] std::vector<View> reg() const;
  /// TotReg = {v ∈ created | ∀p ∈ v.set: reg[v.id]_p}.
  [[nodiscard]] std::vector<View> tot_reg() const;
  /// ∃x ∈ TotReg with lo < x.id < hi.
  [[nodiscard]] bool tot_reg_between(const ViewId& lo, const ViewId& hi) const;

  // ----- invariants ----------------------------------------------------------

  /// Checks Invariants 5.1, 5.2 (corrected form of part 3), 5.3 (corrected
  /// form of part 1), 5.4, 5.5 and 5.6. Throws InvariantViolation on the
  /// first failure. Under weighted dynamic voting, 5.4 and 5.5 use the
  /// weighted majority (the paper's counting form is the all-weights-equal
  /// case); 5.6 and the refinement are weight-independent.
  void check_invariants() const;

  void check_invariant_5_1() const;
  void check_invariant_5_2() const;
  void check_invariant_5_3() const;
  void check_invariant_5_4() const;
  void check_invariant_5_5() const;
  void check_invariant_5_6() const;

  /// The printed form of Invariant 5.2(3): client-cur_p ≠ ⊥ ∧ w ∈ use_p ⇒
  /// w.id ≤ client-cur.id_p. Falsifiable (see header comment); kept for the
  /// documented counterexample tests.
  void check_invariant_5_2_3_literal() const;
  /// The printed form of Invariant 5.3(1), without the w.id < g hypothesis.
  void check_invariant_5_3_1_literal() const;

 private:
  [[nodiscard]] bool acceptance_majority(const ProcessSet& v_set,
                                         const ProcessSet& w_set) const;

  ProcessSet universe_;
  View v0_;
  spec::VsSpec vs_;
  VsToDvsOptions node_options_;
  std::map<ProcessId, VsToDvs> nodes_;
};

}  // namespace dvs::impl
