// Executable transcription of Figure 3: VS-TO-DVS_p, the per-process filter
// that turns a static view-oriented service (VS) into a dynamic
// primary-view service (DVS), following Lotem–Keidar–Dolev dynamic voting.
//
// The automaton keeps an "active" view `act` (the latest view it knows to be
// totally registered) and a set of "ambiguous" views `amb` (attempted views
// with ids above act). On a VS view change it exchanges ⟨"info", act, amb⟩
// with the other members; once it has everyone's information it accepts the
// view as primary iff the view has a majority intersection with every view
// in use = {act} ∪ amb.
//
// The `attempted`, `reg` and `info-sent` variables are not needed by the
// algorithm — the paper keeps them for the proofs, and we keep them for the
// invariant checkers (Invariants 5.1–5.6).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/messages.h"
#include "common/ring.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::impl {

/// The ⟨v, V⟩ payload of an "info" message / info-sent / info-rcvd entry.
struct InfoRecord {
  View act;
  std::map<ViewId, View> amb;

  friend bool operator==(const InfoRecord&, const InfoRecord&) = default;
};

/// Behaviour switches for harness self-validation (mutation testing) and
/// extensions.
struct VsToDvsOptions {
  /// Runs the automaton exactly as printed in Figure 3 — WITHOUT the
  /// drain-before-attempt and deliver-before-safe corrections (see
  /// spec/dvs_spec.h). Unsafe: exists so the test suite can demonstrate
  /// that the refinement checker detects the paper's erratum
  /// (tests/explorer/test_mutations.cpp).
  bool printed_figure_mode = false;

  /// Weighted dynamic voting (extension; Jajodia–Mutchler style): replaces
  /// the |v ∩ w| > |w|/2 acceptance check with a strict majority of w's
  /// vote *weight*. Missing entries weigh 1; with an empty map this is
  /// exactly the paper's rule. Safety is preserved because two weighted
  /// majorities of the same view always intersect — all DVS invariants and
  /// the refinement continue to hold (tests/explorer sweeps run with random
  /// weights).
  WeightMap weights;
};

/// The part of VS-TO-DVS_p state the paper requires to survive a crash
/// (Section 4: dynamic voting is only safe if a process remembers what it
/// attempted and registered). `act`, `amb` and `reg` are exactly the
/// variables the refinement ℱ of Figure 4 projects onto the DVS spec's
/// attempted/registered/TotReg history; `attempted` is kept for the
/// invariant checkers. Everything else (cur, client-cur, the per-view
/// buffers, info bookkeeping) is per-incarnation and may be forgotten: a
/// restarted process rejoins through a fresh view with a higher id.
struct DvsDurableState {
  View act;
  std::map<ViewId, View> amb;
  std::map<ViewId, View> attempted;
  std::set<ViewId> reg;

  friend bool operator==(const DvsDurableState&,
                         const DvsDurableState&) = default;
};

/// Write-ahead observers, invoked synchronously *as* each durable variable
/// changes (before the automaton acts on the new value from the caller's
/// perspective — the whole transition is one simulator event, so log+act is
/// atomic with event-boundary crashes). The journal in dvsys::DvsNode
/// appends one WAL record per call.
struct DvsDurabilityHooks {
  std::function<void(const View&)> on_act;       // act := v
  std::function<void(const View&)> on_amb_add;   // amb ∪= {v}
  std::function<void(const View&)> on_attempt;   // attempted ∪= {v}
  std::function<void(const ViewId&)> on_register;  // reg[g] := true
};

/// The VS-TO-DVS_p automaton of Figure 3.
class VsToDvs {
 public:
  /// `self` is p; `v0` the distinguished initial view; membership of p in
  /// P0 = v0.set determines the initial cur/client-cur/attempted/reg values.
  VsToDvs(ProcessId self, const View& v0, VsToDvsOptions options = {});

  // ----- inputs ------------------------------------------------------------

  /// input VS-NEWVIEW(v)_p. Eff: cur := v; queue ⟨"info", act, amb⟩ for the
  /// new view; record info-sent[v.id].
  void on_vs_newview(const View& v);

  /// input VS-GPRCV(m)_{q,p}. Dispatches on the message kind:
  ///  * ⟨"info", v, V⟩ — record info-rcvd[q, cur.id]; advance act if v is
  ///    newer; amb := {w ∈ amb ∪ V | w.id > act.id};
  ///  * ⟨"registered"⟩ — rcvd-rgst[cur.id, q] := true;
  ///  * m ∈ Mc — append ⟨m, q⟩ to msgs-from-vs[cur.id].
  void on_vs_gprcv(const Msg& m, ProcessId q);

  /// input VS-SAFE(m)_{q,p}. Client messages are appended to
  /// safe-from-vs[cur.id]; "info"/"registered" safes are ignored (Eff: none).
  void on_vs_safe(const Msg& m, ProcessId q);

  /// input DVS-GPSND(m)_p. Eff: if client-cur ≠ ⊥, queue m for the client's
  /// current view.
  void on_dvs_gpsnd(const ClientMsg& m);

  /// input DVS-REGISTER_p. Eff: if client-cur ≠ ⊥, set reg[client-cur.id]
  /// and queue the ⟨"registered"⟩ announcement.
  void on_dvs_register();

  // ----- outputs (precondition + effect) -----------------------------------

  /// output VS-GPSND(m)_p. Pre: m is head of msgs-to-vs[cur.id].
  [[nodiscard]] std::optional<Msg> next_vs_gpsnd() const;
  Msg take_vs_gpsnd();

  // Combined poll-and-take variants for the drain loops: each returns the
  // enabled output and applies its effect, or nullopt when disabled.
  // Equivalent to next_X()+take_X() but the message is moved out instead of
  // built twice — the disabled-precondition check is the hot path of every
  // event-driven drain.
  [[nodiscard]] std::optional<Msg> poll_vs_gpsnd();
  [[nodiscard]] std::optional<std::pair<ClientMsg, ProcessId>> poll_dvs_gprcv();
  [[nodiscard]] std::optional<std::pair<ClientMsg, ProcessId>> poll_dvs_safe();

  /// output DVS-NEWVIEW(v)_p with v = cur. Pre (Figure 3): v = cur,
  /// v.id > client-cur.id, info received from every other member of v, and
  /// ∀w ∈ use: |v.set ∩ w.set| > |w.set| / 2. Corrected (see
  /// spec/dvs_spec.h): additionally, the client-facing buffers of the
  /// current client view must be drained.
  [[nodiscard]] bool can_dvs_newview() const;
  /// Applies the attempt; returns the attempted view (= cur).
  View apply_dvs_newview();

  /// output DVS-GPRCV(m)_{q,p}. Pre: ⟨m,q⟩ head of msgs-from-vs[client-cur].
  [[nodiscard]] std::optional<std::pair<ClientMsg, ProcessId>> next_dvs_gprcv()
      const;
  std::pair<ClientMsg, ProcessId> take_dvs_gprcv();

  /// output DVS-SAFE(m)_{q,p}. Pre: ⟨m,q⟩ head of safe-from-vs[client-cur].
  /// Corrected (deliver-before-safe; see spec/dvs_spec.h): additionally the
  /// client must already have consumed the corresponding delivery, i.e.
  /// fewer safes than deliveries have been handed out in this view.
  [[nodiscard]] std::optional<std::pair<ClientMsg, ProcessId>> next_dvs_safe()
      const;
  std::pair<ClientMsg, ProcessId> take_dvs_safe();

  // ----- internal -----------------------------------------------------------

  /// internal DVS-GARBAGE-COLLECT(v)_p.
  /// Pre: ∀q ∈ v.set: rcvd-rgst[v.id, q] ∧ v.id > act.id.
  /// Eff: act := v; amb := {w ∈ amb | w.id > act.id}.
  /// Candidates are enumerated over the views this process has learned.
  [[nodiscard]] std::vector<View> gc_candidates() const;
  [[nodiscard]] bool can_garbage_collect(const View& v) const;
  void apply_garbage_collect(const View& v);

  // ----- durability (crash-restart recovery) --------------------------------

  /// Installs write-ahead observers for the durable transitions. The ctor's
  /// own initial assignments (v0 membership) fire no hooks; the journal
  /// snapshots the full durable_state() when it attaches instead.
  void set_durability_hooks(DvsDurabilityHooks hooks);

  /// Reinstates recovered durable state after a crash-restart. Must be
  /// called before any input events. cur/client-cur become ⊥ — the process
  /// has no view until VS installs a fresh one (with an id above anything it
  /// saw before; the VS layer's epoch floor guarantees that), so the
  /// volatile per-view buffers stay empty and consistent.
  void restore(const DvsDurableState& recovered);

  /// Snapshot of the durable variables (journal compaction, checkers).
  [[nodiscard]] DvsDurableState durable_state() const;

  // ----- observers (paper state variables) ----------------------------------

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const std::optional<View>& cur() const { return cur_; }
  [[nodiscard]] const std::optional<View>& client_cur() const {
    return client_cur_;
  }
  [[nodiscard]] const View& act() const { return act_; }
  [[nodiscard]] const std::map<ViewId, View>& amb() const { return amb_; }
  /// use = {act} ∪ amb (derived).
  [[nodiscard]] std::vector<View> use() const;
  [[nodiscard]] const std::map<ViewId, View>& attempted() const {
    return attempted_;
  }
  [[nodiscard]] bool reg(const ViewId& g) const { return reg_.contains(g); }
  [[nodiscard]] const std::set<ViewId>& reg_set() const { return reg_; }
  [[nodiscard]] std::optional<InfoRecord> info_sent(const ViewId& g) const;
  [[nodiscard]] const std::map<ViewId, InfoRecord>& info_sent_all() const {
    return info_sent_;
  }
  [[nodiscard]] std::optional<InfoRecord> info_rcvd(ProcessId q,
                                                    const ViewId& g) const;
  [[nodiscard]] bool rcvd_rgst(const ViewId& g, ProcessId q) const;
  [[nodiscard]] const RingBuffer<Msg>& msgs_to_vs(const ViewId& g) const;
  [[nodiscard]] const RingBuffer<std::pair<ClientMsg, ProcessId>>&
  msgs_from_vs(const ViewId& g) const;
  [[nodiscard]] const RingBuffer<std::pair<ClientMsg, ProcessId>>&
  safe_from_vs(const ViewId& g) const;

 private:
  void learn_view(const View& v);

  ProcessId self_;
  VsToDvsOptions options_;
  DvsDurabilityHooks durability_;

  std::optional<View> cur_;         // cur ∈ V⊥
  std::optional<View> client_cur_;  // client-cur ∈ V⊥
  View act_;                        // act ∈ V, init v0
  std::map<ViewId, View> amb_;      // amb ∈ 2^V (keyed by id; ids unique)
  std::map<ViewId, View> attempted_;
  std::map<std::pair<ViewId, ProcessId>, InfoRecord> info_rcvd_;
  std::set<std::pair<ViewId, ProcessId>> rcvd_rgst_;
  // Per-view queues are ring buffers (common/ring.h): in a stable view the
  // automaton pushes and pops the same few queues forever, and the rings
  // recycle their slots instead of allocating a deque block per message.
  std::map<ViewId, RingBuffer<Msg>> msgs_to_vs_;
  std::map<ViewId, RingBuffer<std::pair<ClientMsg, ProcessId>>> msgs_from_vs_;
  std::map<ViewId, RingBuffer<std::pair<ClientMsg, ProcessId>>> safe_from_vs_;
  std::set<ViewId> reg_;  // reg[g] booleans, stored as the true-set
  std::map<ViewId, InfoRecord> info_sent_;

  // Deliver-before-safe accounting (correction; see next_dvs_safe): the
  // number of client deliveries / safe indications handed to the client per
  // view.
  std::map<ViewId, std::size_t> delivered_count_;
  std::map<ViewId, std::size_t> safe_count_;

  // Every view this process has learned about (cur history, act, amb
  // contents, info payloads). Used to enumerate GC candidates.
  std::map<ViewId, View> known_views_;
};

}  // namespace dvs::impl
