#include "impl/dvs_impl.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dvs::impl {

const char* to_string(DvsImplActionKind kind) {
  switch (kind) {
    case DvsImplActionKind::kVsCreateview:
      return "vs-createview";
    case DvsImplActionKind::kVsNewview:
      return "vs-newview";
    case DvsImplActionKind::kVsOrder:
      return "vs-order";
    case DvsImplActionKind::kVsGprcv:
      return "vs-gprcv";
    case DvsImplActionKind::kVsSafe:
      return "vs-safe";
    case DvsImplActionKind::kVsGpsnd:
      return "vs-gpsnd";
    case DvsImplActionKind::kDvsNewview:
      return "dvs-newview";
    case DvsImplActionKind::kDvsGprcv:
      return "dvs-gprcv";
    case DvsImplActionKind::kDvsSafe:
      return "dvs-safe";
    case DvsImplActionKind::kGarbageCollect:
      return "dvs-garbage-collect";
    case DvsImplActionKind::kDvsGpsnd:
      return "dvs-gpsnd";
    case DvsImplActionKind::kDvsRegister:
      return "dvs-register";
  }
  return "?";
}

std::string DvsImplAction::to_string() const {
  std::ostringstream os;
  os << impl::to_string(kind) << "_" << p.to_string();
  if (view.has_value()) os << "(" << view->to_string() << ")";
  if (gid.has_value()) os << "[g=" << gid->to_string() << "]";
  if (from.has_value()) os << "[from=" << from->to_string() << "]";
  if (msg.has_value()) os << "(" << dvs::to_string(*msg) << ")";
  return os.str();
}

DvsImplAction DvsImplAction::make(DvsImplActionKind kind, ProcessId p) {
  DvsImplAction a;
  a.kind = kind;
  a.p = p;
  return a;
}

DvsImplAction DvsImplAction::with_view(DvsImplActionKind kind, ProcessId p,
                                       View v) {
  DvsImplAction a = make(kind, p);
  a.view = std::move(v);
  return a;
}

DvsImplAction DvsImplAction::order(ProcessId sender, ViewId g) {
  DvsImplAction a = make(DvsImplActionKind::kVsOrder, sender);
  a.gid = g;
  a.from = sender;
  return a;
}

DvsImplAction DvsImplAction::send(ProcessId p, ClientMsg m) {
  DvsImplAction a = make(DvsImplActionKind::kDvsGpsnd, p);
  a.msg = std::move(m);
  return a;
}

DvsImplSystem::DvsImplSystem(ProcessSet universe, View v0,
                             VsToDvsOptions node_options)
    : universe_(std::move(universe)),
      v0_(std::move(v0)),
      vs_(universe_, v0_),
      node_options_(std::move(node_options)) {
  for (ProcessId p : universe_) {
    nodes_.emplace(p, VsToDvs{p, v0_, node_options_});
  }
}

bool DvsImplSystem::acceptance_majority(const ProcessSet& v_set,
                                        const ProcessSet& w_set) const {
  return node_options_.weights.empty()
             ? majority_of(v_set, w_set)
             : weighted_majority_of(v_set, w_set, node_options_.weights);
}

std::vector<DvsImplAction> DvsImplSystem::enabled_actions() const {
  std::vector<DvsImplAction> out;
  for (const auto& [p, node] : nodes_) {
    // VS outputs directed at p.
    for (const View& v : vs_.newview_candidates(p)) {
      out.push_back(
          DvsImplAction::with_view(DvsImplActionKind::kVsNewview, p, v));
    }
    if (vs_.next_gprcv(p).has_value()) {
      out.push_back(DvsImplAction::make(DvsImplActionKind::kVsGprcv, p));
    }
    if (vs_.next_safe_indication(p).has_value()) {
      out.push_back(DvsImplAction::make(DvsImplActionKind::kVsSafe, p));
    }
    // VS internal ordering of p's pending messages (any created view id).
    for (const auto& [g, v] : vs_.created()) {
      if (vs_.can_order(p, g)) {
        out.push_back(DvsImplAction::order(p, g));
      }
    }
    // VS-TO-DVS_p outputs.
    if (node.next_vs_gpsnd().has_value()) {
      out.push_back(DvsImplAction::make(DvsImplActionKind::kVsGpsnd, p));
    }
    if (node.can_dvs_newview()) {
      out.push_back(DvsImplAction::with_view(DvsImplActionKind::kDvsNewview,
                                             p, *node.cur()));
    }
    if (node.next_dvs_gprcv().has_value()) {
      out.push_back(DvsImplAction::make(DvsImplActionKind::kDvsGprcv, p));
    }
    if (node.next_dvs_safe().has_value()) {
      out.push_back(DvsImplAction::make(DvsImplActionKind::kDvsSafe, p));
    }
    for (const View& v : node.gc_candidates()) {
      out.push_back(DvsImplAction::with_view(
          DvsImplActionKind::kGarbageCollect, p, v));
    }
  }
  return out;
}

bool DvsImplSystem::can_vs_createview(const View& v) const {
  return vs_.can_createview(v);
}

std::optional<spec::DvsEvent> DvsImplSystem::apply(
    const DvsImplAction& action) {
  VsToDvs& node = nodes_.at(action.p);
  switch (action.kind) {
    case DvsImplActionKind::kVsCreateview:
      vs_.apply_createview(action.view.value());
      return std::nullopt;
    case DvsImplActionKind::kVsNewview: {
      const View& v = action.view.value();
      vs_.apply_newview(v, action.p);
      node.on_vs_newview(v);
      return std::nullopt;
    }
    case DvsImplActionKind::kVsOrder:
      vs_.apply_order(action.from.value(), action.gid.value());
      return std::nullopt;
    case DvsImplActionKind::kVsGprcv: {
      auto [m, sender] = vs_.apply_gprcv(action.p);
      node.on_vs_gprcv(m, sender);
      return std::nullopt;
    }
    case DvsImplActionKind::kVsSafe: {
      auto [m, sender] = vs_.apply_safe(action.p);
      node.on_vs_safe(m, sender);
      return std::nullopt;
    }
    case DvsImplActionKind::kVsGpsnd: {
      Msg m = node.take_vs_gpsnd();
      vs_.apply_gpsnd(m, action.p);
      return std::nullopt;
    }
    case DvsImplActionKind::kDvsNewview: {
      View v = node.apply_dvs_newview();
      return spec::DvsEvent{spec::EvNewview{action.p, std::move(v)}};
    }
    case DvsImplActionKind::kDvsGprcv: {
      auto [m, sender] = node.take_dvs_gprcv();
      return spec::DvsEvent{
          spec::EvGprcv<ClientMsg>{sender, action.p, std::move(m)}};
    }
    case DvsImplActionKind::kDvsSafe: {
      auto [m, sender] = node.take_dvs_safe();
      return spec::DvsEvent{
          spec::EvSafe<ClientMsg>{sender, action.p, std::move(m)}};
    }
    case DvsImplActionKind::kGarbageCollect:
      node.apply_garbage_collect(action.view.value());
      return std::nullopt;
    case DvsImplActionKind::kDvsGpsnd:
      node.on_dvs_gpsnd(action.msg.value());
      return spec::DvsEvent{
          spec::EvGpsnd<ClientMsg>{action.p, action.msg.value()}};
    case DvsImplActionKind::kDvsRegister:
      node.on_dvs_register();
      return spec::DvsEvent{spec::EvRegister{action.p}};
  }
  throw PreconditionViolation("unknown DvsImplAction kind");
}

std::vector<View> DvsImplSystem::created() const {
  std::vector<View> out;
  out.reserve(vs_.created().size());
  for (const auto& [g, v] : vs_.created()) out.push_back(v);
  return out;
}

std::vector<View> DvsImplSystem::att() const {
  std::vector<View> out;
  for (const auto& [g, v] : vs_.created()) {
    const bool attempted_somewhere =
        std::any_of(v.set().begin(), v.set().end(), [&](ProcessId p) {
          return nodes_.at(p).attempted().contains(g);
        });
    if (attempted_somewhere) out.push_back(v);
  }
  return out;
}

std::vector<View> DvsImplSystem::tot_att() const {
  std::vector<View> out;
  for (const auto& [g, v] : vs_.created()) {
    const bool attempted_everywhere =
        std::all_of(v.set().begin(), v.set().end(), [&](ProcessId p) {
          return nodes_.at(p).attempted().contains(g);
        });
    if (attempted_everywhere) out.push_back(v);
  }
  return out;
}

std::vector<View> DvsImplSystem::reg() const {
  std::vector<View> out;
  for (const auto& [g, v] : vs_.created()) {
    const bool registered_somewhere =
        std::any_of(v.set().begin(), v.set().end(),
                    [&](ProcessId p) { return nodes_.at(p).reg(g); });
    if (registered_somewhere) out.push_back(v);
  }
  return out;
}

std::vector<View> DvsImplSystem::tot_reg() const {
  std::vector<View> out;
  for (const auto& [g, v] : vs_.created()) {
    const bool registered_everywhere =
        std::all_of(v.set().begin(), v.set().end(),
                    [&](ProcessId p) { return nodes_.at(p).reg(g); });
    if (registered_everywhere) out.push_back(v);
  }
  return out;
}

bool DvsImplSystem::tot_reg_between(const ViewId& lo, const ViewId& hi) const {
  for (const View& x : tot_reg()) {
    if (lo < x.id() && x.id() < hi) return true;
  }
  return false;
}

void DvsImplSystem::check_invariants() const {
  check_invariant_5_1();
  check_invariant_5_2();
  check_invariant_5_3();
  check_invariant_5_4();
  check_invariant_5_5();
  check_invariant_5_6();
}

// Invariant 5.1: if v ∈ attempted_p and q ∈ v.set then cur.id_q ≥ v.id.
void DvsImplSystem::check_invariant_5_1() const {
  for (const auto& [p, node] : nodes_) {
    for (const auto& [g, v] : node.attempted()) {
      for (ProcessId q : v.set()) {
        const auto& cur_q = nodes_.at(q).cur();
        DVS_INVARIANT("Invariant 5.1 (DVS-IMPL)",
                      cur_q.has_value() && cur_q->id() >= v.id(),
                      "view " << v.to_string() << " attempted at "
                              << p.to_string() << " but member "
                              << q.to_string() << " has an older cur");
      }
    }
  }
}

// Invariant 5.2 parts 1, 2, 4, 5, 6 as printed; part 3 in the corrected
// form: cur_p ≠ ⊥ ∧ w ∈ use_p ⇒ w.id ≤ cur.id_p, with equality only when
// client-cur_p = cur_p. (The printed form bounds use by client-cur, which a
// reachable counterexample falsifies — see dvs_impl.h and the tests.)
void DvsImplSystem::check_invariant_5_2() const {
  const std::vector<View> totreg = tot_reg();
  auto in_totreg = [&](const View& x) {
    return std::any_of(totreg.begin(), totreg.end(),
                       [&](const View& y) { return y == x; });
  };
  for (const auto& [p, node] : nodes_) {
    // (1) act_p ∈ TotReg.
    DVS_INVARIANT("Invariant 5.2.1 (DVS-IMPL)", in_totreg(node.act()),
                  "act at " << p.to_string() << " = "
                            << node.act().to_string()
                            << " is not totally registered");
    // (2) w ∈ amb_p ⇒ act.id_p < w.id.
    for (const auto& [g, w] : node.amb()) {
      DVS_INVARIANT("Invariant 5.2.2 (DVS-IMPL)", node.act().id() < w.id(),
                    "amb entry " << w.to_string() << " not above act at "
                                 << p.to_string());
    }
    // (3, corrected) cur_p ≠ ⊥ ∧ w ∈ use_p ⇒ w.id ≤ cur.id_p; equality only
    // when client-cur_p = cur_p.
    if (node.cur().has_value()) {
      for (const View& w : node.use()) {
        const bool ok =
            w.id() < node.cur()->id() ||
            (w.id() == node.cur()->id() && node.client_cur().has_value() &&
             node.client_cur()->id() == node.cur()->id());
        DVS_INVARIANT("Invariant 5.2.3' (DVS-IMPL, corrected)", ok,
                      "use entry " << w.to_string() << " above cur at "
                                   << p.to_string());
      }
    }
    for (const auto& [g, info] : node.info_sent_all()) {
      // (4) info-sent[g]_p = ⟨x, X⟩ ⇒ x ∈ TotReg.
      DVS_INVARIANT("Invariant 5.2.4 (DVS-IMPL)", in_totreg(info.act),
                    "info-sent[" << g.to_string() << "] at " << p.to_string()
                                 << " carries act "
                                 << info.act.to_string()
                                 << " not totally registered");
      for (const auto& [wid, w] : info.amb) {
        // (5) w ∈ X ⇒ x.id < w.id.
        DVS_INVARIANT("Invariant 5.2.5 (DVS-IMPL)", info.act.id() < w.id(),
                      "info-sent[" << g.to_string() << "] at "
                                   << p.to_string() << " has amb entry "
                                   << w.to_string() << " not above its act");
        // (6) w ∈ {x} ∪ X ⇒ w.id < g.
        DVS_INVARIANT("Invariant 5.2.6 (DVS-IMPL)", w.id() < g,
                      "info-sent[" << g.to_string() << "] amb entry "
                                   << w.to_string() << " not below " << "g");
      }
      DVS_INVARIANT("Invariant 5.2.6 (DVS-IMPL)", info.act.id() < g,
                    "info-sent[" << g.to_string() << "] act "
                                 << info.act.to_string() << " not below g");
    }
  }
}

void DvsImplSystem::check_invariant_5_2_3_literal() const {
  for (const auto& [p, node] : nodes_) {
    if (!node.client_cur().has_value()) continue;
    for (const View& w : node.use()) {
      DVS_INVARIANT("Invariant 5.2.3 (literal)",
                    w.id() <= node.client_cur()->id(),
                    "use entry " << w.to_string() << " above client-cur at "
                                 << p.to_string());
    }
  }
}

// Invariant 5.3, part 1 with the corrective hypothesis w.id < g (the form
// the paper's proofs actually instantiate), part 2 as printed.
void DvsImplSystem::check_invariant_5_3() const {
  for (const auto& [p, node] : nodes_) {
    // (1') info-sent[g]_p = ⟨x, X⟩ ∧ w ∈ attempted_p ∧ w.id < g ⇒
    //      w ∈ {x} ∪ X ∨ w.id < x.id.
    for (const auto& [g, info] : node.info_sent_all()) {
      for (const auto& [wid, w] : node.attempted()) {
        if (!(wid < g)) continue;
        const bool in_info = info.act == w || info.amb.contains(wid);
        DVS_INVARIANT("Invariant 5.3.1' (DVS-IMPL, corrected)",
                      in_info || wid < info.act.id(),
                      "attempted view " << w.to_string()
                                        << " missing from info-sent["
                                        << g.to_string() << "] at "
                                        << p.to_string());
      }
    }
    // (2) info-rcvd[q, g]_p = ⟨x, X⟩ ∧ w ∈ {x} ∪ X ⇒ w ∈ use_p ∨
    //     w.id < act.id_p.
    for (ProcessId q : universe_) {
      for (const auto& [g, v] : vs_.created()) {
        const auto info = node.info_rcvd(q, g);
        if (!info.has_value()) continue;
        auto check = [&](const View& w) {
          const bool in_use = w == node.act() || node.amb().contains(w.id());
          DVS_INVARIANT("Invariant 5.3.2 (DVS-IMPL)",
                        in_use || w.id() < node.act().id(),
                        "info-rcvd[" << q.to_string() << "," << g.to_string()
                                     << "] entry " << w.to_string()
                                     << " neither in use nor below act at "
                                     << p.to_string());
        };
        check(info->act);
        for (const auto& [wid, w] : info->amb) check(w);
      }
    }
  }
}

void DvsImplSystem::check_invariant_5_3_1_literal() const {
  for (const auto& [p, node] : nodes_) {
    for (const auto& [g, info] : node.info_sent_all()) {
      for (const auto& [wid, w] : node.attempted()) {
        const bool in_info = info.act == w || info.amb.contains(wid);
        DVS_INVARIANT("Invariant 5.3.1 (literal)",
                      in_info || wid < info.act.id(),
                      "attempted view " << w.to_string()
                                        << " missing from info-sent["
                                        << g.to_string() << "] at "
                                        << p.to_string());
      }
    }
  }
}

// Invariant 5.4: v ∈ attempted_p, q ∈ v.set, w ∈ attempted_q, w.id < v.id,
// no x ∈ TotReg with w.id < x.id < v.id ⇒ |v.set ∩ w.set| > |w.set| / 2.
void DvsImplSystem::check_invariant_5_4() const {
  for (const auto& [p, node_p] : nodes_) {
    for (const auto& [vid, v] : node_p.attempted()) {
      for (ProcessId q : v.set()) {
        const VsToDvs& node_q = nodes_.at(q);
        for (const auto& [wid, w] : node_q.attempted()) {
          if (!(wid < vid)) continue;
          if (tot_reg_between(wid, vid)) continue;
          DVS_INVARIANT(
              "Invariant 5.4 (DVS-IMPL)", acceptance_majority(v.set(), w.set()),
              "attempted views " << v.to_string() << " (at " << p.to_string()
                                 << ") and " << w.to_string() << " (at "
                                 << q.to_string()
                                 << ") lack a majority intersection");
        }
      }
    }
  }
}

// Invariant 5.5: v ∈ Att, w ∈ TotReg, w.id < v.id, no x ∈ TotReg with
// w.id < x.id < v.id ⇒ |v.set ∩ w.set| > |w.set| / 2.
void DvsImplSystem::check_invariant_5_5() const {
  const std::vector<View> a = att();
  const std::vector<View> tr = tot_reg();
  for (const View& v : a) {
    for (const View& w : tr) {
      if (!(w.id() < v.id())) continue;
      if (tot_reg_between(w.id(), v.id())) continue;
      DVS_INVARIANT("Invariant 5.5 (DVS-IMPL)",
                    acceptance_majority(v.set(), w.set()),
                    "attempted view "
                        << v.to_string()
                        << " lacks a majority of the latest preceding totally "
                           "registered view "
                        << w.to_string());
    }
  }
}

// Invariant 5.6: v, w ∈ Att, w.id < v.id, no x ∈ TotReg with
// w.id < x.id < v.id ⇒ v.set ∩ w.set ≠ {}.
void DvsImplSystem::check_invariant_5_6() const {
  const std::vector<View> a = att();
  for (const View& v : a) {
    for (const View& w : a) {
      if (!(w.id() < v.id())) continue;
      if (tot_reg_between(w.id(), v.id())) continue;
      DVS_INVARIANT("Invariant 5.6 (DVS-IMPL)", intersects(v.set(), w.set()),
                    "attempted views " << v.to_string() << " and "
                                       << w.to_string() << " are disjoint");
    }
  }
}

}  // namespace dvs::impl
