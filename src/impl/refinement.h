// The refinement ℱ of Figure 4 and a step-wise refinement checker — the
// executable counterpart of Lemma 5.8 / Theorem 5.9.
//
// ℱ maps a DVS-IMPL state to a DVS state:
//   * created      = ∪_p attempted_p
//   * current-viewid[p] = client-cur.id_p
//   * registered[g] = {p | reg[g]_p}
//   * pending[p,g] = purge(vs.pending[p,g]) + purge(msgs-to-vs[g]_p)
//   * queue[g]     = purge(vs.queue[g])
//   * next[p,g]    = vs.next[p,g] − purgesize(vs.queue[g](1..next−1))
//                    − |msgs-from-vs[g]_p|
//   * next-safe[p,g] analogously with safe-from-vs
//   * received[p,g] = vs.next[p,g] − 1 − purgesize(vs.queue[g](1..next−1))
//     (corrected spec; the number of client messages the node has received)
// where purge drops "info"/"registered" messages and purgesize counts them.
// Figure 4 leaves the spec's attempted[g] variable implicit; the unique
// completion consistent with the DVS-NEWVIEW effect is
//   attempted[g] = {p | g ∈ attempted_p},
// which we adopt.
//
// The checker maintains a shadow DVS automaton. For every DVS-IMPL step it
// applies the corresponding DVS step(s) from the proof of Lemma 5.8
// (external actions map to their namesakes, a first DVS-NEWVIEW(v) is
// preceded by DVS-CREATEVIEW(v), VS-ORDER of a client message maps to
// DVS-ORDER, everything else maps to no step) and verifies that
//   (a) the spec step is enabled, and
//   (b) the shadow state equals ℱ(implementation state) afterwards.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"
#include "impl/dvs_impl.h"
#include "spec/dvs_spec.h"

namespace dvs::impl {

/// A canonical (default-entries-dropped) snapshot of a DVS-spec state, used
/// to compare ℱ(impl state) with the shadow spec state.
struct DvsState {
  std::map<ViewId, View> created;
  std::map<ProcessId, std::optional<ViewId>> current_viewid;
  std::map<ViewId, ProcessSet> attempted;   // nonempty sets only
  std::map<ViewId, ProcessSet> registered;  // nonempty sets only
  std::map<std::pair<ProcessId, ViewId>, std::vector<ClientMsg>> pending;
  std::map<ViewId, std::vector<std::pair<ClientMsg, ProcessId>>> queue;
  std::map<std::pair<ProcessId, ViewId>, std::size_t> next;       // ≠ 1 only
  std::map<std::pair<ProcessId, ViewId>, std::size_t> next_safe;  // ≠ 1 only
  std::map<std::pair<ProcessId, ViewId>, std::size_t> received;   // ≠ 0 only

  friend bool operator==(const DvsState&, const DvsState&) = default;

  /// Human-readable first difference between two states ("" if equal).
  [[nodiscard]] static std::string diff(const DvsState& a, const DvsState& b);
};

/// Snapshot of a DVS specification automaton state.
[[nodiscard]] DvsState snapshot(const spec::DvsSpec& spec);

/// ℱ: snapshot of the abstract state corresponding to a DVS-IMPL state.
[[nodiscard]] DvsState refinement(const DvsImplSystem& sys);

/// Outcome of one checked step.
struct RefinementResult {
  bool ok = true;
  std::string error;
  /// The external event produced by the step, if any (forwarded from
  /// DvsImplSystem::apply so callers can build traces).
  std::optional<spec::DvsEvent> event;
};

/// Step-wise refinement checker (mechanized Lemma 5.8).
class RefinementChecker {
 public:
  explicit RefinementChecker(const DvsImplSystem& initial);

  /// Applies `action` to `sys` (exactly like sys.apply) while checking the
  /// refinement conditions. On failure the returned result explains which
  /// condition broke; `sys` has still taken its step.
  RefinementResult step(DvsImplSystem& sys, const DvsImplAction& action);

  [[nodiscard]] const spec::DvsSpec& shadow() const { return shadow_; }
  [[nodiscard]] std::size_t steps_checked() const { return steps_checked_; }

 private:
  spec::DvsSpec shadow_;
  std::size_t steps_checked_ = 0;
};

}  // namespace dvs::impl
