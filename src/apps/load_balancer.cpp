#include "apps/load_balancer.h"

#include <algorithm>

namespace dvs::apps {

LoadBalancerNode::LoadBalancerNode(ProcessId self, std::size_t shards)
    : self_(self), shards_(shards) {}

dvsys::ExchangeCallbacks LoadBalancerNode::exchange_callbacks() {
  dvsys::ExchangeCallbacks cb;
  cb.make_state = [this] { return std::to_string(load_); };
  cb.on_established = [this](const View& v,
                             const std::map<ProcessId, std::string>& blobs) {
    on_established(v, blobs);
  };
  return cb;
}

void LoadBalancerNode::on_established(
    const View& v, const std::map<ProcessId, std::string>& blobs) {
  // Order members by (reported load, id): lightly loaded first. Every
  // member computes this from the same agreed blobs, so assignments match.
  std::vector<std::pair<std::uint64_t, ProcessId>> order;
  order.reserve(blobs.size());
  for (const auto& [p, blob] : blobs) {
    std::uint64_t reported = 0;
    try {
      reported = std::stoull(blob);
    } catch (...) {
      reported = 0;  // malformed blob counts as idle, deterministically
    }
    order.emplace_back(reported, p);
  }
  std::sort(order.begin(), order.end());

  assignment_.assign(shards_, ProcessId{});
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    assignment_[shard] = order[shard % order.size()].second;
  }
  assignment_view_ = v;
  fresh_ = true;
}

std::vector<std::size_t> LoadBalancerNode::shards_owned_by(
    ProcessId p) const {
  std::vector<std::size_t> out;
  for (std::size_t shard = 0; shard < assignment_.size(); ++shard) {
    if (assignment_[shard] == p) out.push_back(shard);
  }
  return out;
}

LbCluster::LbCluster(std::size_t n_processes, std::size_t shards,
                     std::uint64_t seed)
    : rng_(seed),
      universe_(make_universe(n_processes)),
      v0_(initial_view(universe_)) {
  net_ = std::make_unique<net::SimNetwork>(sim_, rng_, net::NetConfig{},
                                           universe_);
  for (ProcessId p : universe_) {
    balancers_[p] = std::make_unique<LoadBalancerNode>(p, shards);
    vs_[p] = std::make_unique<vsys::VsNode>(p, std::optional<View>{v0_},
                                            *net_, sim_, vsys::VsConfig{},
                                            vsys::VsCallbacks{});
    dvs_[p] = std::make_unique<dvsys::DvsNode>(p, v0_, *vs_[p],
                                               dvsys::DvsCallbacks{});
    exchange_[p] = std::make_unique<dvsys::ExchangeDvsNode>(
        p, balancers_[p]->exchange_callbacks());
  }
  for (ProcessId p : universe_) {
    dvsys::DvsNode* dvs_node = dvs_.at(p).get();
    dvsys::ExchangeDvsNode* ex = exchange_.at(p).get();
    LoadBalancerNode* lb = balancers_.at(p).get();
    dvs_node->set_callbacks(ex->dvs_callbacks(*dvs_node));
    // Any membership change at the *service* level immediately invalidates
    // the old assignment — even at a node whose new component never becomes
    // primary (it would otherwise keep serving shards the primary side may
    // have reassigned). The assignment turns fresh again only when a new
    // primary view is established by the exchange.
    vsys::VsCallbacks vs_cb = dvs_node->vs_callbacks();
    auto fwd_newview = std::move(vs_cb.on_newview);
    vs_cb.on_newview = [lb, fwd_newview](const View& v) {
      lb->mark_stale();
      if (fwd_newview) fwd_newview(v);
    };
    vs_.at(p)->set_callbacks(std::move(vs_cb));
  }
}

void LbCluster::start() {
  for (auto& [p, node] : vs_) node->start();
  // The initial view v0 counts as established with empty loads: trigger the
  // initial exchange by treating v0 as a fresh primary at every member.
  for (ProcessId p : universe_) {
    dvsys::ExchangeDvsNode& ex = *exchange_.at(p);
    // Simulate the initial DVS-NEWVIEW for v0 (DVS reports only *new*
    // views; v0 is the distinguished initial one every member starts in).
    auto cb = ex.dvs_callbacks(*dvs_.at(p));
    cb.on_newview(v0_);
  }
}

}  // namespace dvs::apps
