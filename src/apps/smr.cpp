#include "apps/smr.h"

#include "common/sequence.h"

namespace dvs::apps {

SmrCluster::SmrCluster(tosys::ClusterConfig config, std::uint64_t seed,
                       MachineFactory factory)
    : cluster_(config, seed) {
  for (ProcessId p : cluster_.universe()) {
    replicas_.emplace(p, factory());
    logs_[p];
  }
  cluster_.set_delivery_hook([this](const tosys::Delivery& d) {
    replicas_.at(d.receiver)->apply(d.msg.payload);
    logs_.at(d.receiver).push_back(d.msg.uid);
  });
}

std::uint64_t SmrCluster::submit(ProcessId p, const std::string& command) {
  const std::uint64_t uid = next_uid_++;
  cluster_.bcast(p, AppMsg{uid, p, command});
  return uid;
}

bool SmrCluster::prefix_consistent() const {
  std::vector<std::vector<std::uint64_t>> all;
  all.reserve(logs_.size());
  for (const auto& [p, log] : logs_) all.push_back(log);
  return is_consistent(all);
}

bool SmrCluster::converged() const {
  const StateMachine* first = nullptr;
  for (const auto& [p, machine] : replicas_) {
    if (first == nullptr) {
      first = machine.get();
      continue;
    }
    if (machine->applied() != first->applied() ||
        machine->digest() != first->digest()) {
      return false;
    }
  }
  return true;
}

}  // namespace dvs::apps
