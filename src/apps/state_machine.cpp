#include "apps/state_machine.h"

#include <sstream>

namespace dvs::apps {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Mix in a separator so "ab"+"c" differs from "a"+"bc".
  h ^= 0xff;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

void KvStateMachine::mix(const std::string& command) {
  digest_ = fnv1a(digest_, command);
  ++applied_;
}

void KvStateMachine::apply(const std::string& command) {
  std::istringstream is(command);
  std::string op;
  std::string key;
  is >> op >> key;
  if (op == "put") {
    std::string value;
    std::getline(is, value);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    data_[key] = value;
  } else if (op == "del") {
    data_.erase(key);
  }
  mix(command);  // unknown ops still advance the history fingerprint
}

std::string KvStateMachine::snapshot() const {
  std::ostringstream os;
  for (const auto& [k, v] : data_) {
    os << k << "=" << v << ";";
  }
  return os.str();
}

std::string KvStateMachine::get(const std::string& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? std::string{} : it->second;
}

void CounterStateMachine::apply(const std::string& command) {
  std::istringstream is(command);
  std::string op;
  std::uint64_t n = 0;
  is >> op >> n;
  if (op == "add") {
    balance_ += n;
  } else if (op == "sub") {
    balance_ = n > balance_ ? 0 : balance_ - n;
  }
  ++applied_;
}

std::string CounterStateMachine::snapshot() const {
  return std::to_string(balance_);
}

std::uint64_t CounterStateMachine::digest() const {
  return balance_ * 0x9e3779b97f4a7c15ULL + applied_;
}

}  // namespace dvs::apps
