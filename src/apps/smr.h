// Replicated state machines over the totally-ordered broadcast stack — the
// paper's replicated-database motivation as a reusable library.
//
// SmrCluster owns a tosys::Cluster and one StateMachine replica per
// process. Commands submitted at any process commit in one global order
// (Theorem 6.4) and are applied to every replica exactly once; replicas are
// therefore always pairwise consistent up to a prefix. Commands submitted
// in a non-primary component stall and commit after the partition heals
// (recovered through the Figure 5 state exchange) — no acknowledged
// command is ever lost or applied twice.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/state_machine.h"
#include "tosys/cluster.h"

namespace dvs::apps {

class SmrCluster {
 public:
  using MachineFactory = std::function<std::unique_ptr<StateMachine>()>;

  /// One replica per process in the cluster; `factory` builds the (empty)
  /// state machine for each.
  SmrCluster(tosys::ClusterConfig config, std::uint64_t seed,
             MachineFactory factory);

  void start() { cluster_.start(); }
  void run_for(sim::Time duration) { cluster_.run_for(duration); }

  /// Submits a command at process p. Returns the command's unique id.
  std::uint64_t submit(ProcessId p, const std::string& command);

  [[nodiscard]] tosys::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const StateMachine& replica(ProcessId p) const {
    return *replicas_.at(p);
  }
  /// Commands applied at p, in application order (ids).
  [[nodiscard]] const std::vector<std::uint64_t>& log(ProcessId p) const {
    return logs_.at(p);
  }

  /// True iff every pair of replicas is prefix-consistent (one's applied
  /// log is a prefix of the other's) — the correctness condition for SMR
  /// over a totally ordered broadcast.
  [[nodiscard]] bool prefix_consistent() const;

  /// True iff all replicas applied the same number of commands and have
  /// equal digests (full convergence; expect after quiescence + heal).
  [[nodiscard]] bool converged() const;

 private:
  tosys::Cluster cluster_;
  std::map<ProcessId, std::unique_ptr<StateMachine>> replicas_;
  std::map<ProcessId, std::vector<std::uint64_t>> logs_;
  std::uint64_t next_uid_ = 1;
};

}  // namespace dvs::apps
