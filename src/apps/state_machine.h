// Deterministic state machines for replication — the application side of
// the paper's coherent-data motivation.
//
// A StateMachine consumes an ordered stream of textual commands; replicas
// that apply the same command sequence reach the same state. digest()
// exposes a cheap fingerprint for consistency checks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace dvs::apps {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one committed command. Must be deterministic.
  virtual void apply(const std::string& command) = 0;

  /// Full serialized state (used for snapshots / debugging).
  [[nodiscard]] virtual std::string snapshot() const = 0;

  /// Order-sensitive fingerprint of the applied history + state.
  [[nodiscard]] virtual std::uint64_t digest() const = 0;

  /// Number of commands applied so far.
  [[nodiscard]] virtual std::uint64_t applied() const = 0;
};

/// Key-value store; commands: "put <key> <value>", "del <key>".
/// Unknown commands are ignored deterministically.
class KvStateMachine final : public StateMachine {
 public:
  void apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::uint64_t digest() const override { return digest_; }
  [[nodiscard]] std::uint64_t applied() const override { return applied_; }

  [[nodiscard]] const std::map<std::string, std::string>& data() const {
    return data_;
  }
  [[nodiscard]] std::string get(const std::string& key) const;

 private:
  void mix(const std::string& command);

  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Bank-style counter machine; commands: "add <n>", "sub <n>" (saturating
/// at zero — withdrawal beyond the balance is a deterministic no-op, the
/// classical consistency example).
class CounterStateMachine final : public StateMachine {
 public:
  void apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::uint64_t digest() const override;
  [[nodiscard]] std::uint64_t applied() const override { return applied_; }

  [[nodiscard]] std::uint64_t balance() const { return balance_; }

 private:
  std::uint64_t balance_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace dvs::apps
