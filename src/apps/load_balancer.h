// Load balancing over dynamic primary views — the second application class
// the paper's Discussion names ("replicated data applications and
// load-balancing applications", Section 7), built on the service-supported
// state-exchange extension (dvsys::ExchangeDvsNode).
//
// Each node owns a share of K shards. Whenever a new primary view is
// established, members exchange their current load as the state blob and
// every member deterministically computes the same shard assignment
// (lightly-loaded members first). Because assignments are derived from an
// agreed view plus agreed blobs, members of a primary never disagree about
// ownership — and a partitioned minority simply keeps its last assignment
// flagged stale, never serving shards the primary side may have moved.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dvsys/exchange_node.h"
#include "net/sim_network.h"
#include "sim/simulator.h"
#include "tosys/cluster.h"
#include "vsys/vs_node.h"

namespace dvs::apps {

/// One balancer participant.
class LoadBalancerNode {
 public:
  LoadBalancerNode(ProcessId self, std::size_t shards);

  /// Reports this node's load (exchanged at the next view establishment).
  void set_load(std::uint64_t load) { load_ = load; }
  [[nodiscard]] std::uint64_t load() const { return load_; }

  /// Exchange-extension callbacks (wired by LbCluster).
  [[nodiscard]] dvsys::ExchangeCallbacks exchange_callbacks();

  /// True iff this node's assignment comes from an established view it is a
  /// member of (serving is safe); false = stale, stop serving.
  [[nodiscard]] bool assignment_fresh() const { return fresh_; }
  [[nodiscard]] const std::optional<View>& assignment_view() const {
    return assignment_view_;
  }
  /// Owner of each shard under the current assignment (empty when never
  /// established). Deterministic across members of the same view.
  [[nodiscard]] const std::vector<ProcessId>& assignment() const {
    return assignment_;
  }
  [[nodiscard]] std::vector<std::size_t> shards_owned_by(ProcessId p) const;

  /// Called by the wiring when the service reports a new (not yet
  /// established) view: the old assignment becomes stale immediately.
  void mark_stale() { fresh_ = false; }

 private:
  void on_established(const View& v,
                      const std::map<ProcessId, std::string>& blobs);

  ProcessId self_;
  std::size_t shards_;
  std::uint64_t load_ = 0;
  bool fresh_ = false;
  std::optional<View> assignment_view_;
  std::vector<ProcessId> assignment_;
};

/// Assembly: simulator + network + VS + DVS + exchange + balancer per
/// process. Mirrors tosys::Cluster but runs the exchange extension instead
/// of the TO application.
class LbCluster {
 public:
  LbCluster(std::size_t n_processes, std::size_t shards, std::uint64_t seed);

  void start();
  void run_for(sim::Time duration) { sim_.run_until(sim_.now() + duration); }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::SimNetwork& net() { return *net_; }
  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] LoadBalancerNode& balancer(ProcessId p) {
    return *balancers_.at(p);
  }
  [[nodiscard]] dvsys::ExchangeDvsNode& exchange(ProcessId p) {
    return *exchange_.at(p);
  }

 private:
  Rng rng_;
  ProcessSet universe_;
  View v0_;
  sim::Simulator sim_;
  std::unique_ptr<net::SimNetwork> net_;
  std::map<ProcessId, std::unique_ptr<vsys::VsNode>> vs_;
  std::map<ProcessId, std::unique_ptr<dvsys::DvsNode>> dvs_;
  std::map<ProcessId, std::unique_ptr<dvsys::ExchangeDvsNode>> exchange_;
  std::map<ProcessId, std::unique_ptr<LoadBalancerNode>> balancers_;
};

}  // namespace dvs::apps
