#include "obs/stack_tracer.h"

#include <algorithm>

namespace dvs::obs {

namespace {

constexpr const char* kViewChange = "view_change";
constexpr const char* kViewActive = "view_active";
constexpr const char* kRegistration = "registration";
constexpr const char* kToDelivery = "to_delivery";
constexpr const char* kRecovery = "recovery";

}  // namespace

SpanInvariantReport check_span_invariants(const TraceLog& log) {
  SpanInvariantReport report;
  // Per-process registration intervals for the overlap check, and the
  // receiver's view_active spans for the nesting check.
  std::map<ProcessId, std::vector<const Span*>> registrations;
  std::map<ProcessId, std::vector<const Span*>> actives;
  for (const Span& s : log.spans()) {
    if (s.kind == kViewChange && s.open()) ++report.open_view_change;
    if (s.kind == kRegistration) registrations[s.process].push_back(&s);
    // A post-restart recovery window counts as tenure for the nesting
    // check: the client view is ⊥ until the next establishment, yet the
    // recovered TO backlog legally drains inside the window.
    if (s.kind == kViewActive || s.kind == kRecovery) {
      actives[s.process].push_back(&s);
    }
  }
  for (const Span& s : log.spans()) {
    if (s.kind != kToDelivery) continue;
    // A to_delivery span is recorded closed at its delivery instant; it
    // nests iff that instant lies inside some view_active tenure of the
    // receiver (the span's process).
    const sim::Time delivered = s.end.value_or(s.start);
    bool nested = false;
    for (const Span* a : actives[s.process]) {
      if (a->covers(delivered)) {
        nested = true;
        break;
      }
    }
    if (!nested) ++report.non_nested_delivery;
  }
  for (auto& [p, spans] : registrations) {
    std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
      return a->start != b->start ? a->start < b->start : a->id < b->id;
    });
    for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
      // Overlap = the next registration starts strictly before this one
      // ended (an open span extends to +Inf). Back-to-back boundaries
      // (abandon at t, reopen at t) are not overlaps.
      const Span* cur = spans[i];
      const Span* next = spans[i + 1];
      if (!cur->end.has_value() || next->start < *cur->end) {
        ++report.overlapping_registration;
      }
    }
  }
  return report;
}

void publish_span_invariants(const SpanInvariantReport& report,
                             MetricsRegistry& metrics) {
  metrics.counter("trace.invariant.open_view_change")
      .set(report.open_view_change);
  metrics.counter("trace.invariant.non_nested_delivery")
      .set(report.non_nested_delivery);
  metrics.counter("trace.invariant.overlapping_registration")
      .set(report.overlapping_registration);
}

StackTracer::StackTracer(MetricsRegistry& metrics, TraceLog& trace)
    : metrics_(metrics), trace_(trace) {}

SpanId StackTracer::open_of(const std::map<ProcessId, SpanId>& m,
                            ProcessId p) const {
  const auto it = m.find(p);
  return it == m.end() ? kNoSpan : it->second;
}

void StackTracer::on_start(const View& v0, sim::Time t) {
  for (ProcessId p : v0.set()) {
    view_active_[p] = trace_.open(kViewActive, p, t, kNoSpan,
                                  {{"view", v0.id().to_string()}});
  }
}

void StackTracer::on_vs_newview(ProcessId p, const View& v, sim::Time t) {
  if (const SpanId old = open_of(view_change_, p); old != kNoSpan) {
    // A newer VS view supersedes the transition in flight: the old target
    // view never became primary at p.
    trace_.abandon(old, t);
    metrics_.counter("trace.view_change.abandoned").inc();
  }
  const auto root = episode_root_.find(v.id());
  const SpanId parent = root == episode_root_.end() ? kNoSpan : root->second;
  const SpanId id = trace_.open(kViewChange, p, t, parent,
                                {{"view", v.id().to_string()}});
  if (root == episode_root_.end()) episode_root_.emplace(v.id(), id);
  view_change_[p] = id;
  metrics_.counter("trace.view_change.opened").inc();
}

void StackTracer::on_dvs_newview(ProcessId p, const View& v, sim::Time t) {
  SpanId transition = open_of(view_change_, p);
  if (transition != kNoSpan) {
    metrics_.histogram("trace.view_change_us")
        .observe(t - trace_.span(transition).start);
    trace_.close(transition, t);
    view_change_.erase(p);
    metrics_.counter("trace.view_change.completed").inc();
  }
  // Client-view tenure rotates: the previous primary stops being the view
  // the client computes in exactly when the next one is established.
  if (const SpanId old = open_of(view_active_, p); old != kNoSpan) {
    trace_.close(old, t);
  }
  view_active_[p] = trace_.open(kViewActive, p, t, transition,
                                {{"view", v.id().to_string()}});
}

void StackTracer::on_register(ProcessId p, const View& v, sim::Time t) {
  if (const SpanId old = open_of(registration_, p); old != kNoSpan) {
    // Registering a newer view while the previous one never reached TotReg.
    trace_.abandon(old, t);
    metrics_.counter("trace.registration.abandoned").inc();
    for (auto& [view_id, spans] : reg_spans_) {
      std::erase_if(spans, [&](const auto& e) { return e.second == old; });
    }
  }
  const SpanId id = trace_.open(kRegistration, p, t, open_of(view_active_, p),
                                {{"view", v.id().to_string()}});
  registration_[p] = id;
  metrics_.counter("trace.registration.opened").inc();
  registered_[v.id()].insert(p);
  reg_view_.emplace(v.id(), v);
  reg_spans_[v.id()].emplace_back(p, id);
  // TotReg: every member of v has issued DVS-REGISTER — close the whole
  // view's registration episode at this instant.
  const ProcessSet& have = registered_[v.id()];
  const ProcessSet& need = reg_view_.at(v.id()).set();
  if (std::includes(have.begin(), have.end(), need.begin(), need.end())) {
    for (const auto& [q, span] : reg_spans_[v.id()]) {
      if (trace_.span(span).open()) {
        metrics_.histogram("trace.registration_us")
            .observe(t - trace_.span(span).start);
        trace_.close(span, t);
        metrics_.counter("trace.registration.completed").inc();
        if (open_of(registration_, q) == span) registration_.erase(q);
      }
    }
    reg_spans_.erase(v.id());
  }
}

void StackTracer::on_bcast(ProcessId /*p*/, std::uint64_t uid, sim::Time t) {
  bcast_at_.emplace(uid, t);
}

void StackTracer::on_brcv(ProcessId receiver, ProcessId origin,
                          std::uint64_t uid, sim::Time t) {
  const auto sent = bcast_at_.find(uid);
  const sim::Time start = sent == bcast_at_.end() ? t : sent->second;
  SpanId parent = open_of(view_active_, receiver);
  if (parent == kNoSpan) parent = open_of(recovery_, receiver);
  const SpanId id = trace_.open(
      kToDelivery, receiver, start, parent,
      {{"origin", origin.to_string()}, {"uid", std::to_string(uid)}});
  trace_.close(id, t);
  metrics_.counter("trace.to_delivery.count").inc();
  metrics_.histogram("trace.to_delivery_us").observe(t - start);
  // First delivery after a restart closes the recovery span: the node is
  // observably back in the total order.
  if (const SpanId rec = open_of(recovery_, receiver); rec != kNoSpan) {
    metrics_.histogram("trace.recovery_us").observe(t -
                                                    trace_.span(rec).start);
    trace_.close(rec, t);
    recovery_.erase(receiver);
    metrics_.counter("trace.recovery.completed").inc();
  }
}

void StackTracer::on_restart(ProcessId p, sim::Time t) {
  if (const SpanId old = open_of(view_change_, p); old != kNoSpan) {
    trace_.abandon(old, t);
    metrics_.counter("trace.view_change.abandoned").inc();
    view_change_.erase(p);
  }
  if (const SpanId old = open_of(registration_, p); old != kNoSpan) {
    trace_.abandon(old, t);
    metrics_.counter("trace.registration.abandoned").inc();
    for (auto& [view_id, spans] : reg_spans_) {
      std::erase_if(spans, [&](const auto& e) { return e.second == old; });
    }
    registration_.erase(p);
  }
  // registered_ stays: DVS-REGISTER is durable (reg survives the restart),
  // so the view's TotReg progress is not undone by the crash.
  if (const SpanId old = open_of(view_active_, p); old != kNoSpan) {
    trace_.close(old, t);
    view_active_.erase(p);
  }
  if (const SpanId old = open_of(recovery_, p); old != kNoSpan) {
    // Restarted again before ever delivering: the previous recovery never
    // completed.
    trace_.abandon(old, t);
    metrics_.counter("trace.recovery.abandoned").inc();
  }
  recovery_[p] = trace_.open(kRecovery, p, t, kNoSpan, {});
  metrics_.counter("trace.recovery.opened").inc();
}

}  // namespace dvs::obs
