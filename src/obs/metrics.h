// Lock-cheap metrics registry: one export path for every layer's counters.
//
// Three instrument kinds, all updated through per-metric atomics (no lock on
// the hot path; the registry mutex guards only metric *creation* and the
// collector list):
//   * Counter   — monotone u64 (plus set(), for collectors that publish a
//     struct-backed value wholesale);
//   * Gauge     — i64 point-in-time value;
//   * Histogram — fixed upper-bound buckets (Prometheus `le` semantics:
//     a value lands in the first bucket whose bound is >= it) with exact
//     count / sum / max and integral quantile readout (p50/p95/p99 report
//     the upper bound of the bucket containing the target rank — exact,
//     platform-independent integers, never interpolated floats).
//
// Metric keys are flat strings with optional Prometheus-style labels baked
// in: `vs.views_installed{process="2"}`. The registry itself never parses
// keys; exports split at '{'.
//
// Layers that keep ad-hoc stats structs (NetStats, VsNodeStats, ...) join
// the registry through *collectors*: callbacks registered once, run by
// collect()/snapshot(), that publish the current struct values under
// canonical keys. That keeps `stats()` accessors source-of-truth and
// allocation-free while giving every run a single JSON/Prometheus export —
// the ddprof/Derecho shape: cheap always-on registry, structured export.
//
// Snapshots are plain ordered maps: deterministic to serialize, mergeable
// across seeds (operator+= sums counters, gauges and buckets in key order),
// and comparable — which is what lets chaos sweeps assert byte-identical
// metric reports for any --jobs value.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dvs::obs {

class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  /// Publish an absolute value (collector path: the backing struct is the
  /// source of truth and the registry mirrors it at collect time).
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t by) { value_.fetch_add(by, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Exported state of one histogram. `bounds` are the finite bucket upper
/// bounds; `counts` has bounds.size() + 1 entries, the last being the
/// overflow (+Inf) bucket.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// Upper bound of the bucket holding the rank ceil(q * count); `max` when
  /// that rank lands in the overflow bucket; 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;
  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() const { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }

  /// Bucket-wise merge; throws std::logic_error on mismatched bounds.
  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

class Histogram {
 public:
  /// `bounds` must be nonempty and strictly increasing.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Default latency buckets in simulated microseconds: 100 µs … 10 s, the
/// range view changes, registrations and TO deliveries actually span.
[[nodiscard]] const std::vector<std::uint64_t>& latency_buckets_us();

/// Deterministic, mergeable, comparable export of a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Sum of every counter whose key is `name` or starts with `name` + "{"
  /// (i.e. all label variants of one metric).
  [[nodiscard]] std::uint64_t counter_sum(const std::string& name) const;

  /// Key-wise merge: counters and gauges add, histograms merge bucket-wise.
  MetricsSnapshot& operator+=(const MetricsSnapshot& other);
  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;

  /// Canonical JSON (sorted keys, integers only — byte-identical for equal
  /// snapshots on every platform). Histograms embed count/sum/max and
  /// p50/p95/p99 alongside the cumulative buckets.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition format.
  [[nodiscard]] std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& key);
  Gauge& gauge(const std::string& key);
  /// Find-or-create with the given bounds (defaults to latency buckets);
  /// re-lookup of an existing histogram ignores `bounds`.
  Histogram& histogram(const std::string& key,
                       const std::vector<std::uint64_t>& bounds =
                           latency_buckets_us());

  /// Registers a callback run by collect(); used by layers that publish
  /// struct-backed stats. Callbacks must outlive the registry's last
  /// collect() call. Returns an id for remove_collector — owners that tear
  /// a layer down (crash-restart rebuilds) must remove its collector first,
  /// or collect() would call into the destroyed object.
  std::size_t add_collector(std::function<void()> fn);
  /// Unregisters a collector by the id add_collector returned. Must not
  /// race a concurrent collect().
  void remove_collector(std::size_t id);
  /// Runs every collector (in registration order).
  void collect();

  /// collect() + export. The result owns plain values — safe to merge,
  /// compare and serialize after the registry (or its collectors) is gone.
  [[nodiscard]] MetricsSnapshot snapshot();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Keyed by registration id: ascending iteration preserves registration
  // order, and erasure (layer teardown on restart) is O(log n).
  std::map<std::size_t, std::function<void()>> collectors_;
  std::size_t next_collector_id_ = 0;
};

}  // namespace dvs::obs
