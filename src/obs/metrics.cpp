#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dvs::obs {

// ----- HistogramSnapshot -----------------------------------------------------

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]: the smallest bucket whose cumulative count
  // reaches it holds the quantile.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return bounds[i];
  }
  return max;  // rank lands in the overflow bucket
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  if (bounds.empty()) {
    *this = other;
    return *this;
  }
  if (other.bounds.empty()) return *this;
  if (bounds != other.bounds) {
    throw std::logic_error("HistogramSnapshot merge: mismatched bounds");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  return *this;
}

// ----- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) throw std::logic_error("Histogram: empty bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::logic_error("Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.counts.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

const std::vector<std::uint64_t>& latency_buckets_us() {
  static const std::vector<std::uint64_t> buckets{
      100,     250,     500,     1'000,    2'500,    5'000,
      10'000,  25'000,  50'000,  100'000,  250'000,  500'000,
      1'000'000, 2'500'000, 5'000'000, 10'000'000};
  return buckets;
}

// ----- MetricsSnapshot -------------------------------------------------------

std::uint64_t MetricsSnapshot::counter_sum(const std::string& name) const {
  std::uint64_t total = 0;
  // Keys are sorted; every label variant of `name` is `name` + "{...}".
  for (auto it = counters.lower_bound(name); it != counters.end(); ++it) {
    const std::string& key = it->first;
    if (key.compare(0, name.size(), name) != 0) break;
    if (key.size() == name.size() || key[name.size()] == '{') {
      total += it->second;
    }
  }
  return total;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& other) {
  for (const auto& [key, value] : other.counters) counters[key] += value;
  for (const auto& [key, value] : other.gauges) gauges[key] += value;
  for (const auto& [key, value] : other.histograms) histograms[key] += value;
  return *this;
}

namespace {

/// Minimal JSON string escaping (keys are code-controlled; quotes and
/// backslashes still must not break the document).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Splits `name{labels}` into the Prometheus metric name (dots become
/// underscores) and the label block (kept verbatim, braces included).
std::pair<std::string, std::string> split_key(const std::string& key) {
  const std::size_t brace = key.find('{');
  std::string name = key.substr(0, brace);
  std::replace(name.begin(), name.end(), '.', '_');
  std::string labels =
      brace == std::string::npos ? std::string{} : key.substr(brace);
  return {std::move(name), std::move(labels)};
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [key, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [key, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) +
           ", \"p50\": " + std::to_string(h.p50()) +
           ", \"p95\": " + std::to_string(h.p95()) +
           ", \"p99\": " + std::to_string(h.p99()) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ", ";
      out += "[";
      out += i < h.bounds.size() ? "\"" + std::to_string(h.bounds[i]) + "\""
                                 : std::string{"\"+Inf\""};
      out += ", " + std::to_string(h.counts[i]) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [key, value] : counters) {
    auto [name, labels] = split_key(key);
    out += "# TYPE " + name + " counter\n";
    out += name + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [key, value] : gauges) {
    auto [name, labels] = split_key(key);
    out += "# TYPE " + name + " gauge\n";
    out += name + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [key, h] : histograms) {
    auto [name, labels] = split_key(key);
    // Inner labels compose with le="..." per the exposition format.
    std::string inner =
        labels.empty() ? std::string{}
                       : labels.substr(1, labels.size() - 2) + ",";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? std::to_string(h.bounds[i]) : "+Inf";
      out += name + "_bucket{" + inner + "le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum" + labels + " " + std::to_string(h.sum) + "\n";
    out += name + "_count" + labels + " " + std::to_string(h.count) + "\n";
  }
  return out;
}

// ----- MetricsRegistry -------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(
    const std::string& key, const std::vector<std::uint64_t>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::size_t MetricsRegistry::add_collector(std::function<void()> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(std::size_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  collectors_.erase(id);
}

void MetricsRegistry::collect() {
  std::vector<std::function<void()>*> fns;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fns.reserve(collectors_.size());
    for (auto& [id, fn] : collectors_) fns.push_back(&fn);
  }
  // Run outside the lock: collectors call back into counter()/gauge().
  for (auto* fn : fns) (*fn)();
}

MetricsSnapshot MetricsRegistry::snapshot() {
  collect();
  MetricsSnapshot s;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, c] : counters_) s.counters.emplace(key, c->value());
  for (const auto& [key, g] : gauges_) s.gauges.emplace(key, g->value());
  for (const auto& [key, h] : histograms_) {
    s.histograms.emplace(key, h->snapshot());
  }
  return s;
}

}  // namespace dvs::obs
