// StackTracer: turns the stack's externally visible actions into causal
// spans (obs::TraceLog) and latency histograms (obs::MetricsRegistry).
//
// The tracer is driven by the same observation points the conformance
// oracle uses (tosys::Cluster's callback wrappers), so it sees exactly the
// paper's external actions:
//
//   VS-NEWVIEW(v)_p   → open  view_change(p, v)   [abandons a superseded one]
//   DVS-NEWVIEW(v)_p  → close view_change(p, v); rotate view_active(p, ·)
//   DVS-REGISTER_p    → open  registration(p, client-cur); when every member
//                       of the view has registered — the view entered TotReg,
//                       the Invariant 4.2 hinge — all its registration spans
//                       close at that instant.
//   BCAST(a)_p        → remember the send time of a.uid
//   BRCV(a)_{q,p}     → emit a completed to_delivery span (BCAST → BRCV)
//
// Parenting makes one tree per reconfiguration episode: the first
// view_change span opened for a view id is the episode root; later
// view_change spans for the same id parent to it, each view_active span
// parents to the view_change that produced it, registration spans parent to
// their view_active tenure, and to_delivery spans parent to the receiver's
// view_active span at delivery time.
//
// Completed spans feed fixed-bucket latency histograms
// (trace.view_change_us / trace.registration_us / trace.to_delivery_us) and
// per-kind opened/completed/abandoned counters, all in the registry, so the
// whole layer exports through one path.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace dvs::obs {

/// Span-invariant violations over a finished trace; all-zero on every
/// conforming run (asserted per seed by tests/sys/test_chaos_metrics.cpp).
struct SpanInvariantReport {
  /// view_change spans never closed — a VS install that reached quiescence
  /// without its view becoming primary (or being superseded).
  std::uint64_t open_view_change = 0;
  /// to_delivery spans whose delivery instant lies inside no view_active
  /// span of the receiver — a delivery outside any client-view tenure.
  std::uint64_t non_nested_delivery = 0;
  /// Pairs of registration spans at one process whose intervals overlap —
  /// a process registering a view while its previous registration episode
  /// is still live.
  std::uint64_t overlapping_registration = 0;

  [[nodiscard]] bool all_zero() const {
    return open_view_change == 0 && non_nested_delivery == 0 &&
           overlapping_registration == 0;
  }
};

[[nodiscard]] SpanInvariantReport check_span_invariants(const TraceLog& log);

/// Publishes a report as trace.invariant.* counters so the violation counts
/// travel inside metric snapshots (and sum to zero across clean sweeps).
void publish_span_invariants(const SpanInvariantReport& report,
                             MetricsRegistry& metrics);

class StackTracer {
 public:
  StackTracer(MetricsRegistry& metrics, TraceLog& trace);

  /// Members of v0 start inside an active view without any DVS-NEWVIEW
  /// event; open their initial view_active spans.
  void on_start(const View& v0, sim::Time t);

  void on_vs_newview(ProcessId p, const View& v, sim::Time t);
  void on_dvs_newview(ProcessId p, const View& v, sim::Time t);
  void on_register(ProcessId p, const View& v, sim::Time t);
  void on_bcast(ProcessId p, std::uint64_t uid, sim::Time t);
  void on_brcv(ProcessId receiver, ProcessId origin, std::uint64_t uid,
               sim::Time t);

  /// p crash-restarts: the incarnation's in-flight spans die (view_change /
  /// registration abandoned, view_active closed — the client view is ⊥
  /// until the next establishment) and a recovery span opens. It closes at
  /// p's first post-restart BRCV — the paper-level "back in business"
  /// instant — feeding the trace.recovery_us histogram; deliveries inside
  /// the window nest in it (the recovered TO backlog can drain before any
  /// new view is established).
  void on_restart(ProcessId p, sim::Time t);

 private:
  [[nodiscard]] SpanId open_of(const std::map<ProcessId, SpanId>& m,
                               ProcessId p) const;

  MetricsRegistry& metrics_;
  TraceLog& trace_;

  std::map<ProcessId, SpanId> view_change_;   // open view_change per process
  std::map<ProcessId, SpanId> view_active_;   // open view_active per process
  std::map<ProcessId, SpanId> registration_;  // open registration per process
  std::map<ProcessId, SpanId> recovery_;      // open recovery per process
  std::map<ViewId, SpanId> episode_root_;     // first view_change per view
  // Registration progress per view: who registered, the membership to
  // reach, and the still-open registration spans to close at TotReg.
  std::map<ViewId, ProcessSet> registered_;
  std::map<ViewId, View> reg_view_;
  std::map<ViewId, std::vector<std::pair<ProcessId, SpanId>>> reg_spans_;
  std::map<std::uint64_t, sim::Time> bcast_at_;  // uid → BCAST time
};

}  // namespace dvs::obs
