#include "obs/trace.h"

namespace dvs::obs {

const char* to_string(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOpen:
      return "open";
    case SpanOutcome::kCompleted:
      return "completed";
    case SpanOutcome::kAbandoned:
      return "abandoned";
  }
  return "?";
}

SpanId TraceLog::open(std::string kind, ProcessId process, sim::Time start,
                      SpanId parent, std::map<std::string, std::string> attrs) {
  Span s;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.kind = std::move(kind);
  s.process = process;
  s.start = start;
  s.attrs = std::move(attrs);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void TraceLog::close(SpanId id, sim::Time at) {
  if (id == kNoSpan) return;
  Span& s = spans_.at(static_cast<std::size_t>(id - 1));
  if (!s.open()) return;
  s.end = at;
  s.outcome = SpanOutcome::kCompleted;
}

void TraceLog::abandon(SpanId id, sim::Time at) {
  if (id == kNoSpan) return;
  Span& s = spans_.at(static_cast<std::size_t>(id - 1));
  if (!s.open()) return;
  s.end = at;
  s.outcome = SpanOutcome::kAbandoned;
}

std::size_t TraceLog::open_count(const std::string& kind) const {
  std::size_t n = 0;
  for (const Span& s : spans_) {
    if (s.open() && s.kind == kind) ++n;
  }
  return n;
}

std::string TraceLog::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const Span& s : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"kind\": \"" +
           s.kind + "\", \"process\": " + std::to_string(s.process.value()) +
           ", \"start\": " + std::to_string(s.start) + ", \"end\": " +
           (s.end.has_value() ? std::to_string(*s.end) : std::string{"null"}) +
           ", \"outcome\": \"" + to_string(s.outcome) + "\"";
    if (!s.attrs.empty()) {
      out += ", \"attrs\": {";
      bool first_attr = true;
      for (const auto& [key, value] : s.attrs) {
        if (!first_attr) out += ", ";
        first_attr = false;
        out += "\"" + key + "\": \"" + value + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

}  // namespace dvs::obs
