// TraceLog: structured spans over simulated time, with causal parent ids.
//
// A span is a named interval [start, end] at one process, optionally linked
// to a parent span — so a whole reconfiguration episode (the VS installs of
// a view at every member, the DVS primary establishments they lead to, the
// registrations that make the view totally registered, and the TO
// deliveries that flow inside it) reconstructs as one tree from the log.
//
// The span kinds the stack emits (see obs::StackTracer):
//   * "view_change"  — VS-NEWVIEW(v) at p → DVS primary established at p.
//     Abandoned (not completed) when a newer VS view supersedes it first.
//   * "view_active"  — DVS primary established at p → the next DVS primary
//     at p; the client-view tenure during which p computes. Open at the end
//     of a run for whichever view is still current.
//   * "registration" — DVS-REGISTER at p → the view totally registered
//     (every member's register observed), the Invariant 4.2 hinge.
//   * "to_delivery"  — BCAST at the origin → BRCV at one member; one span
//     per (message, receiver).
//
// Everything is keyed on simulated time, so for a fixed seed the log —
// including its JSON serialization — is bit-identical across runs and
// thread counts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace dvs::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

enum class SpanOutcome : std::uint8_t { kOpen, kCompleted, kAbandoned };

[[nodiscard]] const char* to_string(SpanOutcome outcome);

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string kind;
  ProcessId process{};
  sim::Time start = 0;
  std::optional<sim::Time> end;
  SpanOutcome outcome = SpanOutcome::kOpen;
  /// Small structured payload (view id, message uid, origin, ...). Ordered
  /// map keeps serialization deterministic.
  std::map<std::string, std::string> attrs;

  [[nodiscard]] bool open() const { return !end.has_value(); }
  /// Duration of a closed span (0 while open).
  [[nodiscard]] sim::Time duration() const {
    return end.has_value() ? *end - start : 0;
  }
  /// True iff `t` lies within [start, end] (open spans extend to +Inf).
  [[nodiscard]] bool covers(sim::Time t) const {
    return t >= start && (!end.has_value() || t <= *end);
  }
};

class TraceLog {
 public:
  /// Opens a span starting at `start` (which may lie in the past — a
  /// to_delivery span starts at its BCAST). Returns its id (ids are
  /// consecutive from 1).
  SpanId open(std::string kind, ProcessId process, sim::Time start,
              SpanId parent = kNoSpan,
              std::map<std::string, std::string> attrs = {});

  /// Closes an open span as completed; no-op if already closed.
  void close(SpanId id, sim::Time at);
  /// Closes an open span as abandoned; no-op if already closed.
  void abandon(SpanId id, sim::Time at);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const Span& span(SpanId id) const {
    return spans_.at(static_cast<std::size_t>(id - 1));
  }
  [[nodiscard]] std::size_t open_count(const std::string& kind) const;

  /// Canonical JSON array of spans in id order (deterministic per seed).
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace dvs::obs
