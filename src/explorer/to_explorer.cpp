#include "explorer/to_explorer.h"

#include "common/check.h"

namespace dvs::explorer {
namespace {
constexpr std::size_t kActionLogSize = 64;
}  // namespace

ToImplExplorer::ToImplExplorer(ProcessSet universe, View v0,
                               ExplorerConfig config, std::uint64_t seed,
                               toimpl::DvsToToOptions node_options)
    : system_(universe, v0, node_options),
      acceptor_(universe),
      config_(config),
      rng_(seed) {}

void ToImplExplorer::run_action(const toimpl::ToImplAction& action,
                                ExplorationStats& stats) {
  action_log_.push_back(action.to_string());
  if (action_log_.size() > kActionLogSize) action_log_.pop_front();
  const auto event = system_.apply(action);
  if (event.has_value()) {
    ++stats.external_events;
    trace_.push_back(*event);
    if (config_.check_acceptance) {
      const spec::AcceptResult r = acceptor_.feed(*event);
      if (!r.ok) {
        throw InvariantViolation("TO trace acceptance (Theorem 6.4) failed: " +
                                 r.error);
      }
    }
  }
}

ExplorationStats ToImplExplorer::run() {
  ExplorationStats stats;
  try {
    for (std::size_t step = 0; step < config_.steps; ++step) {
      ++stats.steps_taken;
      if (rng_.chance(config_.p_env)) {
        ++stats.env_actions;
        if (rng_.chance(config_.p_propose_view) &&
            system_.dvs().created().size() < config_.max_views) {
          const View& latest = system_.dvs().created().rbegin()->second;
          View v = random_view_candidate(
              rng_, system_.universe(),
              system_.dvs().created().rbegin()->first, latest.set(),
              config_.p_biased_membership);
          if (system_.can_dvs_createview(v)) {
            run_action(toimpl::ToImplAction::with_view(
                           toimpl::ToImplActionKind::kDvsCreateview,
                           v.id().origin(), v),
                       stats);
            ++stats.views_created;
          }
        } else {
          const ProcessId p = rng_.pick(system_.universe());
          AppMsg a{next_uid_++, p, ""};
          run_action(toimpl::ToImplAction::bcast(p, std::move(a)), stats);
          ++stats.msgs_sent;
        }
      } else {
        const auto actions = system_.enabled_actions();
        if (actions.empty()) continue;
        const toimpl::ToImplAction& a = rng_.pick(actions);
        run_action(a, stats);
        if (a.kind == toimpl::ToImplActionKind::kDvsNewview) {
          ++stats.dvs_views_attempted;
        } else if (a.kind == toimpl::ToImplActionKind::kBrcv) {
          ++stats.msgs_delivered;
        }
      }
      if (step % config_.check_every == 0) {
        system_.check_invariants();
        ++stats.invariant_checks;
      }
    }
    system_.check_invariants();
    ++stats.invariant_checks;
  } catch (const InvariantViolation& e) {
    throw ExplorationFailure(rng_.seed(), e.what(), action_log_);
  } catch (const PreconditionViolation& e) {
    throw ExplorationFailure(rng_.seed(), e.what(), action_log_);
  }
  return stats;
}

}  // namespace dvs::explorer
