// Randomized execution explorers for the spec automata and for DVS-IMPL.
//
// An explorer drives one automaton (or composed system) with a seeded
// pseudo-random scheduler: at each step it either injects an environment
// action (client send, register, or a candidate view for the membership
// service) or fires one uniformly-chosen enabled automaton action. After
// every step it runs the paper's invariant checkers; the DVS-IMPL explorer
// additionally runs the step-wise refinement checker (Lemma 5.8) and the
// DVS trace acceptor.
//
// All failures throw ExplorationFailure carrying the seed and the recent
// action log, so every counterexample replays deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "common/view.h"
#include "impl/dvs_impl.h"
#include "impl/refinement.h"
#include "spec/acceptors.h"
#include "spec/dvs_spec.h"
#include "spec/events.h"
#include "spec/vs_spec.h"

namespace dvs::explorer {

struct ExplorerConfig {
  std::size_t steps = 2000;
  /// Probability that a step injects an environment action.
  double p_env = 0.35;
  /// Split of environment actions: propose-view vs send vs register.
  double p_propose_view = 0.15;
  double p_register = 0.35;
  /// Cap on the number of views the membership service creates.
  std::size_t max_views = 10;
  /// Run the invariant checkers every k steps (1 = every step).
  std::size_t check_every = 1;
  /// DVS-IMPL only: run the refinement checker / trace acceptor.
  bool check_refinement = true;
  bool check_acceptance = true;
  /// Bias view proposals towards majorities of the latest membership (makes
  /// primary formation likely); 0 = fully uniform memberships.
  double p_biased_membership = 0.6;
};

struct ExplorationStats {
  std::size_t steps_taken = 0;
  std::size_t env_actions = 0;
  std::size_t views_created = 0;
  std::size_t dvs_views_attempted = 0;
  std::size_t msgs_sent = 0;
  std::size_t msgs_delivered = 0;
  std::size_t registers = 0;
  std::size_t external_events = 0;
  std::size_t invariant_checks = 0;

  friend bool operator==(const ExplorationStats&,
                         const ExplorationStats&) = default;
};

/// Field-wise accumulation (used by the parallel seed sweeps; summing in a
/// fixed seed order keeps aggregates thread-count independent).
inline ExplorationStats& operator+=(ExplorationStats& a,
                                    const ExplorationStats& b) {
  a.steps_taken += b.steps_taken;
  a.env_actions += b.env_actions;
  a.views_created += b.views_created;
  a.dvs_views_attempted += b.dvs_views_attempted;
  a.msgs_sent += b.msgs_sent;
  a.msgs_delivered += b.msgs_delivered;
  a.registers += b.registers;
  a.external_events += b.external_events;
  a.invariant_checks += b.invariant_checks;
  return a;
}

/// Thrown when an invariant, refinement or acceptance check fails during
/// exploration; carries the seed and the tail of the action log.
class ExplorationFailure : public std::runtime_error {
 public:
  ExplorationFailure(std::uint64_t seed, const std::string& why,
                     const std::deque<std::string>& recent_actions);
};

/// Explores the VS specification (Figure 1) standalone. Checks
/// Invariant 3.1 and structural sanity every step.
class VsSpecExplorer {
 public:
  VsSpecExplorer(ProcessSet universe, View v0, ExplorerConfig config,
                 std::uint64_t seed);

  ExplorationStats run();
  [[nodiscard]] const spec::VsSpec& spec() const { return spec_; }

 private:
  spec::VsSpec spec_;
  ExplorerConfig config_;
  Rng rng_;
  std::uint64_t next_uid_ = 1;
};

/// Explores the DVS specification (Figure 2) standalone. Checks
/// Invariants 4.1 and 4.2 every step.
class DvsSpecExplorer {
 public:
  DvsSpecExplorer(ProcessSet universe, View v0, ExplorerConfig config,
                  std::uint64_t seed);

  ExplorationStats run();
  [[nodiscard]] const spec::DvsSpec& spec() const { return spec_; }

 private:
  spec::DvsSpec spec_;
  ExplorerConfig config_;
  Rng rng_;
  std::uint64_t next_uid_ = 1;
};

/// Explores DVS-IMPL (Section 5). Checks Invariants 5.1–5.6 (corrected
/// forms; see impl/dvs_impl.h), the refinement to DVS (Lemma 5.8), and DVS
/// trace acceptance, every step.
class DvsImplExplorer {
 public:
  DvsImplExplorer(ProcessSet universe, View v0, ExplorerConfig config,
                  std::uint64_t seed, impl::VsToDvsOptions node_options = {});

  ExplorationStats run();

  [[nodiscard]] const impl::DvsImplSystem& system() const { return system_; }
  [[nodiscard]] const std::vector<spec::DvsEvent>& trace() const {
    return trace_;
  }

 private:
  void on_event(const spec::DvsEvent& event, ExplorationStats& stats);

  impl::DvsImplSystem system_;
  impl::RefinementChecker refinement_;
  spec::DvsAcceptor acceptor_;
  ExplorerConfig config_;
  Rng rng_;
  std::uint64_t next_uid_ = 1;
  std::vector<spec::DvsEvent> trace_;
  std::deque<std::string> action_log_;
};

/// Generates a candidate view for the membership service: a fresh id above
/// everything in `existing_max`, with a random nonempty membership of
/// `universe`, biased (per config) toward majorities of `bias_toward`.
[[nodiscard]] View random_view_candidate(Rng& rng, const ProcessSet& universe,
                                         const ViewId& existing_max,
                                         const ProcessSet& bias_toward,
                                         double p_biased);

}  // namespace dvs::explorer
