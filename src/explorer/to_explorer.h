// Randomized explorer for TO-IMPL (Section 6): drives the composed
// DVS × Π DVS-TO-TO_p system, checks Invariants 6.1–6.3 every step, and
// feeds the external BCAST/BRCV trace to the TO acceptor — the executable
// counterpart of Theorem 6.4.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "explorer/explorer.h"
#include "spec/acceptors.h"
#include "toimpl/to_impl.h"

namespace dvs::explorer {

class ToImplExplorer {
 public:
  ToImplExplorer(ProcessSet universe, View v0, ExplorerConfig config,
                 std::uint64_t seed,
                 toimpl::DvsToToOptions node_options = {});

  ExplorationStats run();

  [[nodiscard]] const toimpl::ToImplSystem& system() const { return system_; }
  [[nodiscard]] const std::vector<spec::ToEvent>& trace() const {
    return trace_;
  }

 private:
  void run_action(const toimpl::ToImplAction& action, ExplorationStats& stats);

  toimpl::ToImplSystem system_;
  spec::ToAcceptor acceptor_;
  ExplorerConfig config_;
  Rng rng_;
  std::uint64_t next_uid_ = 1;
  std::vector<spec::ToEvent> trace_;
  std::deque<std::string> action_log_;
};

}  // namespace dvs::explorer
