#include "explorer/explorer.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dvs::explorer {
namespace {

constexpr std::size_t kActionLogSize = 64;

std::string failure_message(std::uint64_t seed, const std::string& why,
                            const std::deque<std::string>& recent) {
  std::ostringstream os;
  os << why << "\n  seed: " << seed << "\n  last " << recent.size()
     << " actions:";
  for (const std::string& a : recent) os << "\n    " << a;
  return os.str();
}

}  // namespace

ExplorationFailure::ExplorationFailure(
    std::uint64_t seed, const std::string& why,
    const std::deque<std::string>& recent_actions)
    : std::runtime_error(failure_message(seed, why, recent_actions)) {}

View random_view_candidate(Rng& rng, const ProcessSet& universe,
                           const ViewId& existing_max,
                           const ProcessSet& bias_toward, double p_biased) {
  const std::uint64_t epoch =
      existing_max.epoch() + 1 + static_cast<std::uint64_t>(rng.below(2));
  const ProcessId origin = rng.pick(universe);
  ProcessSet members;
  if (!bias_toward.empty() && rng.chance(p_biased)) {
    // Start from a strict majority of the bias set, then sprinkle others:
    // this makes dynamic-primary formation reachable often.
    std::vector<ProcessId> pool(bias_toward.begin(), bias_toward.end());
    std::shuffle(pool.begin(), pool.end(), rng.engine());
    const std::size_t quorum = bias_toward.size() / 2 + 1;
    members.insert(pool.begin(),
                   pool.begin() + static_cast<std::ptrdiff_t>(quorum));
    for (ProcessId p : universe) {
      if (rng.chance(0.3)) members.insert(p);
    }
  } else {
    for (ProcessId p : universe) {
      if (rng.chance(0.5)) members.insert(p);
    }
    if (members.empty()) members.insert(rng.pick(universe));
  }
  return View{ViewId{epoch, origin}, std::move(members)};
}

// ---------------------------------------------------------------------------
// VsSpecExplorer
// ---------------------------------------------------------------------------

VsSpecExplorer::VsSpecExplorer(ProcessSet universe, View v0,
                               ExplorerConfig config, std::uint64_t seed)
    : spec_(std::move(universe), std::move(v0)),
      config_(config),
      rng_(seed) {}

ExplorationStats VsSpecExplorer::run() {
  ExplorationStats stats;
  std::deque<std::string> log;
  auto note = [&](const std::string& a) {
    log.push_back(a);
    if (log.size() > kActionLogSize) log.pop_front();
  };
  try {
    for (std::size_t step = 0; step < config_.steps; ++step) {
      ++stats.steps_taken;
      if (rng_.chance(config_.p_env)) {
        ++stats.env_actions;
        if (rng_.chance(config_.p_propose_view) &&
            spec_.created().size() < config_.max_views) {
          const View& latest = spec_.created().rbegin()->second;
          View v = random_view_candidate(rng_, spec_.universe(),
                                         spec_.max_created_id(), latest.set(),
                                         config_.p_biased_membership);
          if (spec_.can_createview(v)) {
            spec_.apply_createview(v);
            ++stats.views_created;
            note("vs-createview(" + v.to_string() + ")");
          }
        } else {
          const ProcessId p = rng_.pick(spec_.universe());
          spec_.apply_gpsnd(Msg{OpaqueMsg{next_uid_++, p}}, p);
          ++stats.msgs_sent;
          note("vs-gpsnd_" + p.to_string());
        }
      } else {
        // Enumerate enabled non-env actions.
        struct Choice {
          int kind;  // 0 newview, 1 order, 2 gprcv, 3 safe
          ProcessId p;
          View v;
          ViewId g;
        };
        std::vector<Choice> choices;
        for (ProcessId p : spec_.universe()) {
          for (const View& v : spec_.newview_candidates(p)) {
            choices.push_back({0, p, v, {}});
          }
          for (const auto& [g, v] : spec_.created()) {
            if (spec_.can_order(p, g)) choices.push_back({1, p, {}, g});
          }
          if (spec_.next_gprcv(p).has_value()) {
            choices.push_back({2, p, {}, {}});
          }
          if (spec_.next_safe_indication(p).has_value()) {
            choices.push_back({3, p, {}, {}});
          }
        }
        if (choices.empty()) continue;
        const Choice& c = rng_.pick(choices);
        switch (c.kind) {
          case 0:
            spec_.apply_newview(c.v, c.p);
            note("vs-newview(" + c.v.to_string() + ")_" + c.p.to_string());
            break;
          case 1:
            spec_.apply_order(c.p, c.g);
            note("vs-order_" + c.p.to_string());
            break;
          case 2:
            spec_.apply_gprcv(c.p);
            ++stats.msgs_delivered;
            note("vs-gprcv_" + c.p.to_string());
            break;
          default:
            spec_.apply_safe(c.p);
            note("vs-safe_" + c.p.to_string());
            break;
        }
      }
      if (step % config_.check_every == 0) {
        spec_.check_invariants();
        ++stats.invariant_checks;
      }
    }
    spec_.check_invariants();
    ++stats.invariant_checks;
  } catch (const InvariantViolation& e) {
    throw ExplorationFailure(rng_.seed(), e.what(), log);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// DvsSpecExplorer
// ---------------------------------------------------------------------------

DvsSpecExplorer::DvsSpecExplorer(ProcessSet universe, View v0,
                                 ExplorerConfig config, std::uint64_t seed)
    : spec_(std::move(universe), std::move(v0)),
      config_(config),
      rng_(seed) {}

ExplorationStats DvsSpecExplorer::run() {
  ExplorationStats stats;
  std::deque<std::string> log;
  auto note = [&](const std::string& a) {
    log.push_back(a);
    if (log.size() > kActionLogSize) log.pop_front();
  };
  try {
    for (std::size_t step = 0; step < config_.steps; ++step) {
      ++stats.steps_taken;
      if (rng_.chance(config_.p_env)) {
        ++stats.env_actions;
        const double r = rng_.uniform();
        if (r < config_.p_propose_view &&
            spec_.created().size() < config_.max_views) {
          // DVS permits out-of-order creation: occasionally propose an epoch
          // between existing ones.
          const View& latest = spec_.created().rbegin()->second;
          View v = random_view_candidate(rng_, spec_.universe(),
                                         spec_.created().rbegin()->first,
                                         latest.set(),
                                         config_.p_biased_membership);
          if (rng_.chance(0.25) && spec_.created().size() >= 2) {
            // Rewind the epoch into the middle of the created range.
            const std::uint64_t lo = spec_.created().begin()->first.epoch();
            const std::uint64_t hi = spec_.created().rbegin()->first.epoch();
            if (hi > lo + 1) {
              const auto epoch = static_cast<std::uint64_t>(
                  rng_.between(static_cast<std::int64_t>(lo + 1),
                               static_cast<std::int64_t>(hi)));
              v = View{ViewId{epoch, v.id().origin()}, v.set()};
            }
          }
          if (spec_.can_createview(v)) {
            spec_.apply_createview(v);
            ++stats.views_created;
            note("dvs-createview(" + v.to_string() + ")");
          }
        } else if (r < config_.p_propose_view + config_.p_register) {
          const ProcessId p = rng_.pick(spec_.universe());
          spec_.apply_register(p);
          ++stats.registers;
          note("dvs-register_" + p.to_string());
        } else {
          const ProcessId p = rng_.pick(spec_.universe());
          spec_.apply_gpsnd(ClientMsg{OpaqueMsg{next_uid_++, p}}, p);
          ++stats.msgs_sent;
          note("dvs-gpsnd_" + p.to_string());
        }
      } else {
        struct Choice {
          int kind;  // 0 newview, 1 order, 2 gprcv, 3 safe
          ProcessId p;
          View v;
          ViewId g;
        };
        std::vector<Choice> choices;
        for (ProcessId p : spec_.universe()) {
          for (const View& v : spec_.newview_candidates(p)) {
            choices.push_back({0, p, v, {}});
          }
          for (const auto& [g, v] : spec_.created()) {
            if (spec_.can_order(p, g)) choices.push_back({1, p, {}, g});
            if (spec_.can_receive(p, g)) choices.push_back({4, p, {}, g});
          }
          if (spec_.next_gprcv(p).has_value()) {
            choices.push_back({2, p, {}, {}});
          }
          if (spec_.next_safe_indication(p).has_value()) {
            choices.push_back({3, p, {}, {}});
          }
        }
        if (choices.empty()) continue;
        const Choice& c = rng_.pick(choices);
        switch (c.kind) {
          case 0:
            spec_.apply_newview(c.v, c.p);
            ++stats.dvs_views_attempted;
            note("dvs-newview(" + c.v.to_string() + ")_" + c.p.to_string());
            break;
          case 1:
            spec_.apply_order(c.p, c.g);
            note("dvs-order_" + c.p.to_string());
            break;
          case 2:
            spec_.apply_gprcv(c.p);
            ++stats.msgs_delivered;
            note("dvs-gprcv_" + c.p.to_string());
            break;
          case 3:
            spec_.apply_safe(c.p);
            note("dvs-safe_" + c.p.to_string());
            break;
          default:
            spec_.apply_receive(c.p, c.g);
            note("dvs-receive_" + c.p.to_string());
            break;
        }
      }
      if (step % config_.check_every == 0) {
        spec_.check_invariants();
        ++stats.invariant_checks;
      }
    }
    spec_.check_invariants();
    ++stats.invariant_checks;
  } catch (const InvariantViolation& e) {
    throw ExplorationFailure(rng_.seed(), e.what(), log);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// DvsImplExplorer
// ---------------------------------------------------------------------------

DvsImplExplorer::DvsImplExplorer(ProcessSet universe, View v0,
                                 ExplorerConfig config, std::uint64_t seed,
                                 impl::VsToDvsOptions node_options)
    : system_(universe, v0, node_options),
      refinement_(system_),
      acceptor_(universe, v0),
      config_(config),
      rng_(seed) {}

void DvsImplExplorer::on_event(const spec::DvsEvent& event,
                               ExplorationStats& stats) {
  ++stats.external_events;
  trace_.push_back(event);
  if (config_.check_acceptance) {
    const spec::AcceptResult r = acceptor_.feed(event);
    if (!r.ok) {
      throw InvariantViolation("DVS trace acceptance failed: " + r.error);
    }
  }
}

ExplorationStats DvsImplExplorer::run() {
  ExplorationStats stats;
  auto note = [&](const std::string& a) {
    action_log_.push_back(a);
    if (action_log_.size() > kActionLogSize) action_log_.pop_front();
  };
  auto run_action = [&](const impl::DvsImplAction& action) {
    note(action.to_string());
    if (config_.check_refinement) {
      impl::RefinementResult r = refinement_.step(system_, action);
      if (!r.ok) throw InvariantViolation(r.error);
      if (r.event.has_value()) on_event(*r.event, stats);
    } else {
      auto event = system_.apply(action);
      if (event.has_value()) on_event(*event, stats);
    }
  };

  try {
    for (std::size_t step = 0; step < config_.steps; ++step) {
      ++stats.steps_taken;
      if (rng_.chance(config_.p_env)) {
        ++stats.env_actions;
        const double r = rng_.uniform();
        if (r < config_.p_propose_view &&
            system_.vs().created().size() < config_.max_views) {
          const View& latest = system_.vs().created().rbegin()->second;
          View v = random_view_candidate(
              rng_, system_.universe(), system_.vs().max_created_id(),
              latest.set(), config_.p_biased_membership);
          if (system_.can_vs_createview(v)) {
            impl::DvsImplAction a = impl::DvsImplAction::with_view(
                impl::DvsImplActionKind::kVsCreateview, v.id().origin(), v);
            run_action(a);
            ++stats.views_created;
          }
        } else if (r < config_.p_propose_view + config_.p_register) {
          const ProcessId p = rng_.pick(system_.universe());
          run_action(impl::DvsImplAction::make(
              impl::DvsImplActionKind::kDvsRegister, p));
          ++stats.registers;
        } else {
          const ProcessId p = rng_.pick(system_.universe());
          run_action(impl::DvsImplAction::send(
              p, ClientMsg{OpaqueMsg{next_uid_++, p}}));
          ++stats.msgs_sent;
        }
      } else {
        const std::vector<impl::DvsImplAction> actions =
            system_.enabled_actions();
        if (actions.empty()) continue;
        const impl::DvsImplAction& a = rng_.pick(actions);
        run_action(a);
        if (a.kind == impl::DvsImplActionKind::kDvsNewview) {
          ++stats.dvs_views_attempted;
        } else if (a.kind == impl::DvsImplActionKind::kDvsGprcv) {
          ++stats.msgs_delivered;
        }
      }
      if (step % config_.check_every == 0) {
        system_.check_invariants();
        ++stats.invariant_checks;
      }
    }
    system_.check_invariants();
    ++stats.invariant_checks;
  } catch (const InvariantViolation& e) {
    throw ExplorationFailure(rng_.seed(), e.what(), action_log_);
  } catch (const PreconditionViolation& e) {
    throw ExplorationFailure(rng_.seed(), e.what(), action_log_);
  }
  return stats;
}

}  // namespace dvs::explorer
