#include "explorer/exhaustive.h"

#include "common/check.h"
#include "parallel/sharded_set.h"
#include "parallel/state_hash.h"
#include "parallel/thread_pool.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace dvs::explorer {
namespace {

void encode_counters(
    std::ostringstream& os,
    const std::map<ProcessId, std::map<ViewId, std::size_t>>& counters,
    std::size_t default_value) {
  for (const auto& [p, per_view] : counters) {
    for (const auto& [g, value] : per_view) {
      if (value != default_value) {
        os << p.to_string() << g.to_string() << ':' << value << ';';
      }
    }
  }
}

void encode_counters_binary(
    Writer& w,
    const std::map<ProcessId, std::map<ViewId, std::size_t>>& counters,
    std::size_t default_value) {
  std::size_t n = 0;
  for (const auto& [p, per_view] : counters) {
    for (const auto& [g, value] : per_view) {
      if (value != default_value) ++n;
    }
  }
  w.varuint(n);
  for (const auto& [p, per_view] : counters) {
    for (const auto& [g, value] : per_view) {
      if (value != default_value) {
        w.process_id(p);
        w.view_id(g);
        w.varuint(value);
      }
    }
  }
}

}  // namespace

std::string encode_state(const spec::DvsSpec& spec) {
  std::ostringstream os;
  os << "C";
  for (const auto& [g, v] : spec.created()) os << v.to_string();
  os << "|V";
  for (ProcessId p : spec.universe()) {
    const auto cur = spec.current_viewid(p);
    os << (cur.has_value() ? cur->to_string() : std::string{"_"}) << ';';
  }
  os << "|A";
  for (const auto& [g, members] : spec.attempted_all()) {
    os << g.to_string() << ':';
    for (ProcessId p : members) os << p.value() << ',';
    os << ';';
  }
  os << "|R";
  for (const auto& [g, members] : spec.registered_all()) {
    os << g.to_string() << ':';
    for (ProcessId p : members) os << p.value() << ',';
    os << ';';
  }
  os << "|P";
  for (const auto& [p, per_view] : spec.pending_all()) {
    for (const auto& [g, msgs] : per_view) {
      if (msgs.empty()) continue;
      os << p.to_string() << g.to_string() << ':';
      for (const ClientMsg& m : msgs) os << to_string(m) << ',';
      os << ';';
    }
  }
  os << "|Q";
  for (const auto& [g, queue] : spec.queue_all()) {
    if (queue.empty()) continue;
    os << g.to_string() << ':';
    for (const auto& [m, sender] : queue) {
      os << to_string(m) << '@' << sender.value() << ',';
    }
    os << ';';
  }
  os << "|N";
  encode_counters(os, spec.next_all(), 1);
  os << "|S";
  encode_counters(os, spec.next_safe_all(), 1);
  os << "|D";
  encode_counters(os, spec.received_all(), 0);
  return os.str();
}

void encode_state_binary(const spec::DvsSpec& spec, Writer& w) {
  w.varuint(spec.created().size());
  for (const auto& [g, v] : spec.created()) w.view(v);
  for (ProcessId p : spec.universe()) {
    const auto cur = spec.current_viewid(p);
    w.u8(cur.has_value() ? 1 : 0);
    if (cur.has_value()) w.view_id(*cur);
  }
  w.varuint(spec.attempted_all().size());
  for (const auto& [g, members] : spec.attempted_all()) {
    w.view_id(g);
    w.process_set(members);
  }
  w.varuint(spec.registered_all().size());
  for (const auto& [g, members] : spec.registered_all()) {
    w.view_id(g);
    w.process_set(members);
  }
  // pending / queue: sparse maps may hold touched-but-empty sequences that
  // are semantically absent; skip them so such states key identically
  // (mirrors the string encoding).
  {
    std::size_t n = 0;
    for (const auto& [p, per_view] : spec.pending_all()) {
      for (const auto& [g, msgs] : per_view) {
        if (!msgs.empty()) ++n;
      }
    }
    w.varuint(n);
    for (const auto& [p, per_view] : spec.pending_all()) {
      for (const auto& [g, msgs] : per_view) {
        if (msgs.empty()) continue;
        w.process_id(p);
        w.view_id(g);
        w.varuint(msgs.size());
        for (const ClientMsg& m : msgs) w.client_msg(m);
      }
    }
  }
  {
    std::size_t n = 0;
    for (const auto& [g, queue] : spec.queue_all()) {
      if (!queue.empty()) ++n;
    }
    w.varuint(n);
    for (const auto& [g, queue] : spec.queue_all()) {
      if (queue.empty()) continue;
      w.view_id(g);
      w.varuint(queue.size());
      for (const auto& [m, sender] : queue) {
        w.client_msg(m);
        w.process_id(sender);
      }
    }
  }
  encode_counters_binary(w, spec.next_all(), 1);
  encode_counters_binary(w, spec.next_safe_all(), 1);
  encode_counters_binary(w, spec.received_all(), 0);
}

// ---------------------------------------------------------------------------
// Generic BFS engines. A Model supplies:
//   Node                      — one search node (automaton state + budget)
//   encode(node, Writer&)     — injective binary key (appended to Writer)
//   check(node)               — state invariants; throws InvariantViolation
//   expand(node, emit)        — calls emit(Node&&) once per transition;
//                               may throw InvariantViolation (e.g. a failed
//                               refinement step)
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void throw_collision() {
  throw std::logic_error(
      "128-bit state-hash collision detected (paranoid check): two distinct "
      "encodings share a key");
}

template <typename Model>
ExhaustiveStats serial_bfs(const Model& model, typename Model::Node initial,
                           const ExhaustiveConfig& config) {
  using Node = typename Model::Node;
  ExhaustiveStats stats;
  std::deque<Node> frontier;
  std::unordered_set<parallel::Hash128, parallel::Hash128Hasher> visited;
  std::unordered_map<parallel::Hash128, Bytes, parallel::Hash128Hasher>
      visited_full;  // paranoid mode only
  const bool paranoid = config.paranoid_collision_check;
  Writer scratch;

  // Key the state currently sitting in `scratch`; returns true if new.
  auto insert_scratch = [&]() -> bool {
    const parallel::Hash128 h =
        parallel::hash128(scratch.buffer().data(), scratch.size());
    if (!paranoid) return visited.insert(h).second;
    auto [it, inserted] = visited_full.try_emplace(h, scratch.buffer());
    if (!inserted && it->second != scratch.buffer()) throw_collision();
    return inserted;
  };

  model.check(initial);
  scratch.clear();
  model.encode(initial, scratch);
  (void)insert_scratch();
  frontier.push_back(std::move(initial));
  stats.states_visited = 1;

  while (!frontier.empty()) {
    if (stats.states_visited >= config.max_states) {
      stats.truncated = true;
      break;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();
    model.expand(node, [&](Node&& next) {
      ++stats.transitions;
      scratch.clear();
      model.encode(next, scratch);
      if (!insert_scratch()) return;
      model.check(next);
      ++stats.states_visited;
      frontier.push_back(std::move(next));
      stats.frontier_peak = std::max(stats.frontier_peak, frontier.size());
    });
  }
  return stats;
}

/// Level-synchronized parallel BFS. Workers split each depth level into
/// contiguous chunks, dedup successors against the sharded visited set and
/// tally locally; tallies merge in worker order at the level barrier, so
/// states_visited/transitions equal the serial search exactly whenever the
/// scope is not truncated (every reachable state is inserted once and
/// expanded once, regardless of which worker got there first). Invariant
/// failures are collected per level and the one with the smallest encoded
/// state is reported, keeping even the counterexample choice independent
/// of thread interleaving.
template <typename Model>
ExhaustiveStats parallel_bfs(const Model& model, typename Model::Node initial,
                             const ExhaustiveConfig& config,
                             std::size_t jobs) {
  using Node = typename Model::Node;
  ExhaustiveStats stats;
  parallel::ShardedStateSet visited(config.shards,
                                    config.paranoid_collision_check);

  model.check(initial);
  {
    Writer w;
    model.encode(initial, w);
    (void)visited.insert(parallel::hash128(w.buffer().data(), w.size()),
                         w.buffer());
  }
  std::vector<Node> level;
  level.push_back(std::move(initial));
  stats.states_visited = 1;
  stats.frontier_peak = 1;

  struct WorkerOut {
    std::vector<Node> next;
    std::size_t transitions = 0;
    std::size_t states = 0;
    // Smallest-keyed invariant failure seen by this worker, if any.
    std::optional<std::pair<Bytes, std::string>> failure;
    std::exception_ptr harness_error;
  };

  parallel::ThreadPool pool(jobs);
  const std::size_t workers = pool.size();

  while (!level.empty()) {
    if (stats.states_visited >= config.max_states) {
      stats.truncated = true;
      break;
    }
    std::vector<WorkerOut> outs(workers);
    for (std::size_t k = 0; k < workers; ++k) {
      pool.submit([&model, &config, &visited, &level, &out = outs[k], k,
                   workers]() noexcept {
        try {
          Writer scratch;
          auto note_failure = [&out](const Bytes& key, std::string why) {
            if (!out.failure.has_value() || key < out.failure->first) {
              out.failure = {key, std::move(why)};
            }
          };
          const std::size_t begin = level.size() * k / workers;
          const std::size_t end = level.size() * (k + 1) / workers;
          for (std::size_t i = begin; i < end; ++i) {
            const Node& node = level[i];
            try {
              model.expand(node, [&](Node&& next) {
                ++out.transitions;
                scratch.clear();
                model.encode(next, scratch);
                const parallel::Hash128 h = parallel::hash128(
                    scratch.buffer().data(), scratch.size());
                if (!visited.insert(h, scratch.buffer())) return;
                try {
                  next.check_self();
                } catch (const InvariantViolation& e) {
                  note_failure(scratch.buffer(), e.what());
                  return;
                }
                ++out.states;
                out.next.push_back(std::move(next));
              });
            } catch (const InvariantViolation& e) {
              // A transition itself was rejected (refinement step); key the
              // report by the parent state.
              scratch.clear();
              model.encode(node, scratch);
              note_failure(scratch.buffer(), e.what());
            }
          }
        } catch (...) {
          out.harness_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();

    std::vector<Node> next_level;
    std::optional<std::pair<Bytes, std::string>> failure;
    for (WorkerOut& out : outs) {
      if (out.harness_error) std::rethrow_exception(out.harness_error);
      stats.transitions += out.transitions;
      stats.states_visited += out.states;
      if (out.failure.has_value() &&
          (!failure.has_value() || out.failure->first < failure->first)) {
        failure = std::move(out.failure);
      }
      if (next_level.empty()) {
        next_level = std::move(out.next);
      } else {
        next_level.insert(next_level.end(),
                          std::make_move_iterator(out.next.begin()),
                          std::make_move_iterator(out.next.end()));
      }
    }
    if (failure.has_value()) throw InvariantViolation(failure->second);
    stats.frontier_peak = std::max(stats.frontier_peak, next_level.size());
    level = std::move(next_level);
  }
  return stats;
}

template <typename Model>
ExhaustiveStats run_bfs(const Model& model, typename Model::Node initial,
                        const ExhaustiveConfig& config) {
  const std::size_t jobs = parallel::resolve_jobs(config.jobs);
  if (jobs <= 1) return serial_bfs(model, std::move(initial), config);
  return parallel_bfs(model, std::move(initial), config, jobs);
}

// ---------------------------------------------------------------------------
// DVS specification model.
// ---------------------------------------------------------------------------

struct SpecNode {
  spec::DvsSpec spec;
  std::size_t sends_used;

  void check_self() const { spec.check_invariants(); }
};

class SpecModel {
 public:
  using Node = SpecNode;

  SpecModel(const ProcessSet& universe, const ExhaustiveConfig& config)
      : universe_(universe), config_(config) {}

  void encode(const Node& node, Writer& w) const {
    encode_state_binary(node.spec, w);
    w.varuint(node.sends_used);
  }

  void check(const Node& node) const { node.check_self(); }

  template <typename Emit>
  void expand(const Node& node, Emit&& emit) const {
    const spec::DvsSpec& s = node.spec;

    // DVS-CREATEVIEW over the candidate pool.
    for (const View& v : config_.candidate_views) {
      if (s.can_createview(v)) {
        spec::DvsSpec next = s;
        next.apply_createview(v);
        emit(Node{std::move(next), node.sends_used});
      }
    }
    for (ProcessId p : universe_) {
      // DVS-NEWVIEW.
      for (const View& v : s.newview_candidates(p)) {
        spec::DvsSpec next = s;
        next.apply_newview(v, p);
        emit(Node{std::move(next), node.sends_used});
      }
      // DVS-REGISTER (input; always enabled — dedup discards no-ops).
      {
        spec::DvsSpec next = s;
        next.apply_register(p);
        emit(Node{std::move(next), node.sends_used});
      }
      // DVS-GPSND within the budget; message identity = send index.
      if (node.sends_used < config_.send_budget) {
        spec::DvsSpec next = s;
        next.apply_gpsnd(ClientMsg{OpaqueMsg{node.sends_used + 1, p}}, p);
        emit(Node{std::move(next), node.sends_used + 1});
      }
      // DVS-ORDER / DVS-RECEIVE over created views.
      for (const auto& [g, v] : s.created()) {
        if (s.can_order(p, g)) {
          spec::DvsSpec next = s;
          next.apply_order(p, g);
          emit(Node{std::move(next), node.sends_used});
        }
        if (s.can_receive(p, g)) {
          spec::DvsSpec next = s;
          next.apply_receive(p, g);
          emit(Node{std::move(next), node.sends_used});
        }
      }
      // DVS-GPRCV / DVS-SAFE.
      if (s.next_gprcv(p).has_value()) {
        spec::DvsSpec next = s;
        next.apply_gprcv(p);
        emit(Node{std::move(next), node.sends_used});
      }
      if (s.next_safe_indication(p).has_value()) {
        spec::DvsSpec next = s;
        next.apply_safe(p);
        emit(Node{std::move(next), node.sends_used});
      }
    }
  }

 private:
  const ProcessSet& universe_;
  const ExhaustiveConfig& config_;
};

}  // namespace

ExhaustiveStats exhaustive_check_dvs_spec(const ProcessSet& universe,
                                          const View& v0,
                                          const ExhaustiveConfig& config) {
  SpecModel model(universe, config);
  return run_bfs(model, SpecNode{spec::DvsSpec{universe, v0}, 0}, config);
}

// ---------------------------------------------------------------------------
// DVS-IMPL model.
// ---------------------------------------------------------------------------

namespace {

void encode_info(std::ostringstream& os, const impl::InfoRecord& info) {
  os << info.act.to_string() << '[';
  for (const auto& [g, w] : info.amb) os << w.to_string() << ',';
  os << ']';
}

void encode_info_binary(Writer& w, const impl::InfoRecord& info) {
  w.view(info.act);
  w.varuint(info.amb.size());
  for (const auto& [g, v] : info.amb) w.view(v);
}

void encode_node(std::ostringstream& os, const impl::VsToDvs& node) {
  os << "{cur=" << (node.cur() ? node.cur()->to_string() : "_")
     << ";cc=" << (node.client_cur() ? node.client_cur()->to_string() : "_")
     << ";act=" << node.act().to_string() << ";amb=";
  for (const auto& [g, w] : node.amb()) os << w.to_string() << ',';
  os << ";att=";
  for (const auto& [g, w] : node.attempted()) os << g.to_string() << ',';
  os << ";reg=";
  for (const ViewId& g : node.reg_set()) os << g.to_string() << ',';
  os << ";is=";
  for (const auto& [g, info] : node.info_sent_all()) {
    os << g.to_string() << ':';
    encode_info(os, info);
    os << ';';
  }
  os << "}";
}

void encode_node_binary(Writer& w, const impl::VsToDvs& node) {
  auto opt_view = [&w](const std::optional<View>& v) {
    w.u8(v.has_value() ? 1 : 0);
    if (v.has_value()) w.view(*v);
  };
  opt_view(node.cur());
  opt_view(node.client_cur());
  w.view(node.act());
  w.varuint(node.amb().size());
  for (const auto& [g, v] : node.amb()) w.view(v);
  w.varuint(node.attempted().size());
  for (const auto& [g, v] : node.attempted()) w.view_id(g);
  w.varuint(node.reg_set().size());
  for (const ViewId& g : node.reg_set()) w.view_id(g);
  w.varuint(node.info_sent_all().size());
  for (const auto& [g, info] : node.info_sent_all()) {
    w.view_id(g);
    encode_info_binary(w, info);
  }
}

}  // namespace

std::string encode_state(const impl::DvsImplSystem& sys) {
  std::ostringstream os;
  // VS spec portion.
  os << "VS:C";
  for (const auto& [g, v] : sys.vs().created()) os << v.to_string();
  for (ProcessId p : sys.universe()) {
    const auto cur = sys.vs().current_viewid(p);
    os << '|' << (cur ? cur->to_string() : std::string{"_"});
    for (const auto& [g, v] : sys.vs().created()) {
      const auto& pend = sys.vs().pending(p, g);
      if (!pend.empty()) {
        os << "P" << g.to_string() << ':';
        for (const Msg& m : pend) os << to_string(m) << ',';
      }
      if (sys.vs().next(p, g) != 1) {
        os << "n" << g.to_string() << '=' << sys.vs().next(p, g);
      }
      if (sys.vs().next_safe(p, g) != 1) {
        os << "s" << g.to_string() << '=' << sys.vs().next_safe(p, g);
      }
    }
  }
  for (const auto& [g, v] : sys.vs().created()) {
    const auto& q = sys.vs().queue(g);
    if (q.empty()) continue;
    os << "|Q" << g.to_string() << ':';
    for (const auto& [m, sender] : q) {
      os << to_string(m) << '@' << sender.value() << ',';
    }
  }
  // Per-node automaton state. info-rcvd and rcvd-rgst are keyed by the
  // created views × processes.
  for (ProcessId p : sys.universe()) {
    const impl::VsToDvs& node = sys.node(p);
    os << "|N" << p.value();
    encode_node(os, node);
    for (const auto& [g, v] : sys.vs().created()) {
      for (ProcessId q : sys.universe()) {
        const auto info = node.info_rcvd(q, g);
        if (info.has_value()) {
          os << "ir" << q.value() << g.to_string() << ':';
          encode_info(os, *info);
        }
        if (node.rcvd_rgst(g, q)) {
          os << "rr" << q.value() << g.to_string();
        }
      }
      const auto& to_vs = node.msgs_to_vs(g);
      if (!to_vs.empty()) {
        os << "tv" << g.to_string() << ':';
        for (const Msg& m : to_vs) os << to_string(m) << ',';
      }
      const auto& from_vs = node.msgs_from_vs(g);
      if (!from_vs.empty()) {
        os << "fv" << g.to_string() << ':';
        for (const auto& [m, sender] : from_vs) {
          os << to_string(m) << '@' << sender.value() << ',';
        }
      }
      const auto& safe_vs = node.safe_from_vs(g);
      if (!safe_vs.empty()) {
        os << "sv" << g.to_string() << ':';
        for (const auto& [m, sender] : safe_vs) {
          os << to_string(m) << '@' << sender.value() << ',';
        }
      }
    }
  }
  return os.str();
}

void encode_state_binary(const impl::DvsImplSystem& sys, Writer& w) {
  const spec::VsSpec& vs = sys.vs();
  // VS spec portion: created views, then per (process × created view) the
  // pending sequence and counters, then per-view queues. The iteration
  // domain is fixed given `created`, so values can be written
  // unconditionally — unlike the sparse maps in the DvsSpec encoder there
  // is no touched-but-empty ambiguity here.
  w.varuint(vs.created().size());
  for (const auto& [g, v] : vs.created()) w.view(v);
  for (ProcessId p : sys.universe()) {
    const auto cur = vs.current_viewid(p);
    w.u8(cur.has_value() ? 1 : 0);
    if (cur.has_value()) w.view_id(*cur);
    for (const auto& [g, v] : vs.created()) {
      const auto& pend = vs.pending(p, g);
      w.varuint(pend.size());
      for (const Msg& m : pend) w.msg(m);
      w.varuint(vs.next(p, g));
      w.varuint(vs.next_safe(p, g));
    }
  }
  for (const auto& [g, v] : vs.created()) {
    const auto& queue = vs.queue(g);
    w.varuint(queue.size());
    for (const auto& [m, sender] : queue) {
      w.msg(m);
      w.process_id(sender);
    }
  }
  // Per-node automaton state.
  for (ProcessId p : sys.universe()) {
    const impl::VsToDvs& node = sys.node(p);
    encode_node_binary(w, node);
    for (const auto& [g, v] : vs.created()) {
      for (ProcessId q : sys.universe()) {
        const auto info = node.info_rcvd(q, g);
        w.u8(info.has_value() ? 1 : 0);
        if (info.has_value()) encode_info_binary(w, *info);
        w.u8(node.rcvd_rgst(g, q) ? 1 : 0);
      }
      const auto& to_vs = node.msgs_to_vs(g);
      w.varuint(to_vs.size());
      for (const Msg& m : to_vs) w.msg(m);
      const auto& from_vs = node.msgs_from_vs(g);
      w.varuint(from_vs.size());
      for (const auto& [m, sender] : from_vs) {
        w.client_msg(m);
        w.process_id(sender);
      }
      const auto& safe_vs = node.safe_from_vs(g);
      w.varuint(safe_vs.size());
      for (const auto& [m, sender] : safe_vs) {
        w.client_msg(m);
        w.process_id(sender);
      }
    }
  }
}

namespace {

struct ImplNode {
  impl::DvsImplSystem sys;
  impl::RefinementChecker checker;  // shadow rides along; ≅ ℱ(sys)
  std::size_t sends_used;

  void check_self() const { sys.check_invariants(); }
};

class ImplModel {
 public:
  using Node = ImplNode;

  ImplModel(const ProcessSet& universe, const ExhaustiveConfig& config)
      : universe_(universe), config_(config) {}

  void encode(const Node& node, Writer& w) const {
    encode_state_binary(node.sys, w);
    w.varuint(node.sends_used);
  }

  void check(const Node& node) const { node.check_self(); }

  template <typename Emit>
  void expand(const Node& node, Emit&& emit) const {
    auto step = [&](const impl::DvsImplAction& action,
                    std::size_t sends_used) {
      Node next{node.sys, node.checker, sends_used};
      const impl::RefinementResult r = next.checker.step(next.sys, action);
      if (!r.ok) throw InvariantViolation(r.error);
      emit(std::move(next));
    };

    // Environment: candidate VS views, client sends, registrations.
    for (const View& v : config_.candidate_views) {
      if (node.sys.can_vs_createview(v)) {
        step(impl::DvsImplAction::with_view(
                 impl::DvsImplActionKind::kVsCreateview, v.id().origin(), v),
             node.sends_used);
      }
    }
    for (ProcessId p : universe_) {
      if (node.sends_used < config_.send_budget) {
        step(impl::DvsImplAction::send(
                 p, ClientMsg{OpaqueMsg{node.sends_used + 1, p}}),
             node.sends_used + 1);
      }
      // Register only when it changes something: a re-register appends yet
      // another "registered" message without any new information, which
      // would make the reachable state space infinite.
      {
        const impl::VsToDvs& n = node.sys.node(p);
        if (n.client_cur().has_value() && !n.reg(n.client_cur()->id())) {
          step(impl::DvsImplAction::make(impl::DvsImplActionKind::kDvsRegister,
                                         p),
               node.sends_used);
        }
      }
    }
    // All enabled system actions.
    for (const impl::DvsImplAction& a : node.sys.enabled_actions()) {
      step(a, node.sends_used);
    }
  }

 private:
  const ProcessSet& universe_;
  const ExhaustiveConfig& config_;
};

}  // namespace

ExhaustiveStats exhaustive_check_dvs_impl(const ProcessSet& universe,
                                          const View& v0,
                                          const ExhaustiveConfig& config) {
  ImplModel model(universe, config);
  ImplNode initial{impl::DvsImplSystem{universe, v0},
                   impl::RefinementChecker{impl::DvsImplSystem{universe, v0}},
                   0};
  return run_bfs(model, std::move(initial), config);
}

}  // namespace dvs::explorer
