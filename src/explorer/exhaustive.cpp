#include "explorer/exhaustive.h"

#include "common/check.h"

#include <deque>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace dvs::explorer {
namespace {

/// One search node: a spec state plus the number of sends used so far (the
/// environment budget is part of the state space).
struct Node {
  spec::DvsSpec spec;
  std::size_t sends_used;
};

void encode_counters(
    std::ostringstream& os,
    const std::map<ProcessId, std::map<ViewId, std::size_t>>& counters,
    std::size_t default_value) {
  for (const auto& [p, per_view] : counters) {
    for (const auto& [g, value] : per_view) {
      if (value != default_value) {
        os << p.to_string() << g.to_string() << ':' << value << ';';
      }
    }
  }
}

}  // namespace

std::string encode_state(const spec::DvsSpec& spec) {
  std::ostringstream os;
  os << "C";
  for (const auto& [g, v] : spec.created()) os << v.to_string();
  os << "|V";
  for (ProcessId p : spec.universe()) {
    const auto cur = spec.current_viewid(p);
    os << (cur.has_value() ? cur->to_string() : std::string{"_"}) << ';';
  }
  os << "|A";
  for (const auto& [g, members] : spec.attempted_all()) {
    os << g.to_string() << ':';
    for (ProcessId p : members) os << p.value() << ',';
    os << ';';
  }
  os << "|R";
  for (const auto& [g, members] : spec.registered_all()) {
    os << g.to_string() << ':';
    for (ProcessId p : members) os << p.value() << ',';
    os << ';';
  }
  os << "|P";
  for (const auto& [p, per_view] : spec.pending_all()) {
    for (const auto& [g, msgs] : per_view) {
      if (msgs.empty()) continue;
      os << p.to_string() << g.to_string() << ':';
      for (const ClientMsg& m : msgs) os << to_string(m) << ',';
      os << ';';
    }
  }
  os << "|Q";
  for (const auto& [g, queue] : spec.queue_all()) {
    if (queue.empty()) continue;
    os << g.to_string() << ':';
    for (const auto& [m, sender] : queue) {
      os << to_string(m) << '@' << sender.value() << ',';
    }
    os << ';';
  }
  os << "|N";
  encode_counters(os, spec.next_all(), 1);
  os << "|S";
  encode_counters(os, spec.next_safe_all(), 1);
  os << "|D";
  encode_counters(os, spec.received_all(), 0);
  return os.str();
}

ExhaustiveStats exhaustive_check_dvs_spec(const ProcessSet& universe,
                                          const View& v0,
                                          const ExhaustiveConfig& config) {
  ExhaustiveStats stats;
  std::deque<Node> frontier;
  std::unordered_set<std::string> visited;

  Node initial{spec::DvsSpec{universe, v0}, 0};
  initial.spec.check_invariants();
  visited.insert(encode_state(initial.spec) + "#0");
  frontier.push_back(std::move(initial));
  stats.states_visited = 1;

  auto push = [&](spec::DvsSpec next, std::size_t sends_used) {
    ++stats.transitions;
    std::string key = encode_state(next) + "#" + std::to_string(sends_used);
    if (!visited.insert(std::move(key)).second) return;
    next.check_invariants();
    ++stats.states_visited;
    frontier.push_back(Node{std::move(next), sends_used});
    stats.frontier_peak = std::max(stats.frontier_peak, frontier.size());
  };

  while (!frontier.empty()) {
    if (stats.states_visited >= config.max_states) {
      stats.truncated = true;
      break;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();
    const spec::DvsSpec& s = node.spec;

    // DVS-CREATEVIEW over the candidate pool.
    for (const View& v : config.candidate_views) {
      if (s.can_createview(v)) {
        spec::DvsSpec next = s;
        next.apply_createview(v);
        push(std::move(next), node.sends_used);
      }
    }
    for (ProcessId p : universe) {
      // DVS-NEWVIEW.
      for (const View& v : s.newview_candidates(p)) {
        spec::DvsSpec next = s;
        next.apply_newview(v, p);
        push(std::move(next), node.sends_used);
      }
      // DVS-REGISTER (input; always enabled — dedup discards no-ops).
      {
        spec::DvsSpec next = s;
        next.apply_register(p);
        push(std::move(next), node.sends_used);
      }
      // DVS-GPSND within the budget; message identity = send index.
      if (node.sends_used < config.send_budget) {
        spec::DvsSpec next = s;
        next.apply_gpsnd(
            ClientMsg{OpaqueMsg{node.sends_used + 1, p}}, p);
        push(std::move(next), node.sends_used + 1);
      }
      // DVS-ORDER / DVS-RECEIVE over created views.
      for (const auto& [g, v] : s.created()) {
        if (s.can_order(p, g)) {
          spec::DvsSpec next = s;
          next.apply_order(p, g);
          push(std::move(next), node.sends_used);
        }
        if (s.can_receive(p, g)) {
          spec::DvsSpec next = s;
          next.apply_receive(p, g);
          push(std::move(next), node.sends_used);
        }
      }
      // DVS-GPRCV / DVS-SAFE.
      if (s.next_gprcv(p).has_value()) {
        spec::DvsSpec next = s;
        next.apply_gprcv(p);
        push(std::move(next), node.sends_used);
      }
      if (s.next_safe_indication(p).has_value()) {
        spec::DvsSpec next = s;
        next.apply_safe(p);
        push(std::move(next), node.sends_used);
      }
    }
  }
  return stats;
}

namespace {

void encode_info(std::ostringstream& os, const impl::InfoRecord& info) {
  os << info.act.to_string() << '[';
  for (const auto& [g, w] : info.amb) os << w.to_string() << ',';
  os << ']';
}

void encode_node(std::ostringstream& os, const impl::VsToDvs& node) {
  os << "{cur=" << (node.cur() ? node.cur()->to_string() : "_")
     << ";cc=" << (node.client_cur() ? node.client_cur()->to_string() : "_")
     << ";act=" << node.act().to_string() << ";amb=";
  for (const auto& [g, w] : node.amb()) os << w.to_string() << ',';
  os << ";att=";
  for (const auto& [g, w] : node.attempted()) os << g.to_string() << ',';
  os << ";reg=";
  for (const ViewId& g : node.reg_set()) os << g.to_string() << ',';
  os << ";is=";
  for (const auto& [g, info] : node.info_sent_all()) {
    os << g.to_string() << ':';
    encode_info(os, info);
    os << ';';
  }
  os << "}";
}

}  // namespace

std::string encode_state(const impl::DvsImplSystem& sys) {
  std::ostringstream os;
  // VS spec portion.
  os << "VS:C";
  for (const auto& [g, v] : sys.vs().created()) os << v.to_string();
  for (ProcessId p : sys.universe()) {
    const auto cur = sys.vs().current_viewid(p);
    os << '|' << (cur ? cur->to_string() : std::string{"_"});
    for (const auto& [g, v] : sys.vs().created()) {
      const auto& pend = sys.vs().pending(p, g);
      if (!pend.empty()) {
        os << "P" << g.to_string() << ':';
        for (const Msg& m : pend) os << to_string(m) << ',';
      }
      if (sys.vs().next(p, g) != 1) {
        os << "n" << g.to_string() << '=' << sys.vs().next(p, g);
      }
      if (sys.vs().next_safe(p, g) != 1) {
        os << "s" << g.to_string() << '=' << sys.vs().next_safe(p, g);
      }
    }
  }
  for (const auto& [g, v] : sys.vs().created()) {
    const auto& q = sys.vs().queue(g);
    if (q.empty()) continue;
    os << "|Q" << g.to_string() << ':';
    for (const auto& [m, sender] : q) {
      os << to_string(m) << '@' << sender.value() << ',';
    }
  }
  // Per-node automaton state. info-rcvd and rcvd-rgst are keyed by the
  // created views × processes.
  for (ProcessId p : sys.universe()) {
    const impl::VsToDvs& node = sys.node(p);
    os << "|N" << p.value();
    encode_node(os, node);
    for (const auto& [g, v] : sys.vs().created()) {
      for (ProcessId q : sys.universe()) {
        const auto info = node.info_rcvd(q, g);
        if (info.has_value()) {
          os << "ir" << q.value() << g.to_string() << ':';
          encode_info(os, *info);
        }
        if (node.rcvd_rgst(g, q)) {
          os << "rr" << q.value() << g.to_string();
        }
      }
      const auto& to_vs = node.msgs_to_vs(g);
      if (!to_vs.empty()) {
        os << "tv" << g.to_string() << ':';
        for (const Msg& m : to_vs) os << to_string(m) << ',';
      }
      const auto& from_vs = node.msgs_from_vs(g);
      if (!from_vs.empty()) {
        os << "fv" << g.to_string() << ':';
        for (const auto& [m, sender] : from_vs) {
          os << to_string(m) << '@' << sender.value() << ',';
        }
      }
      const auto& safe_vs = node.safe_from_vs(g);
      if (!safe_vs.empty()) {
        os << "sv" << g.to_string() << ':';
        for (const auto& [m, sender] : safe_vs) {
          os << to_string(m) << '@' << sender.value() << ',';
        }
      }
    }
  }
  return os.str();
}

ExhaustiveStats exhaustive_check_dvs_impl(const ProcessSet& universe,
                                          const View& v0,
                                          const ExhaustiveConfig& config) {
  ExhaustiveStats stats;

  struct Node {
    impl::DvsImplSystem sys;
    impl::RefinementChecker checker;  // shadow rides along; ≅ ℱ(sys)
    std::size_t sends_used;
  };

  std::deque<Node> frontier;
  std::unordered_set<std::string> visited;

  Node initial{impl::DvsImplSystem{universe, v0},
               impl::RefinementChecker{impl::DvsImplSystem{universe, v0}},
               0};
  initial.sys.check_invariants();
  visited.insert(encode_state(initial.sys) + "#0");
  frontier.push_back(std::move(initial));
  stats.states_visited = 1;

  auto expand = [&](const Node& node, const impl::DvsImplAction& action,
                    std::size_t sends_used) {
    ++stats.transitions;
    Node next{node.sys, node.checker, sends_used};
    const impl::RefinementResult r = next.checker.step(next.sys, action);
    if (!r.ok) throw InvariantViolation(r.error);
    std::string key = encode_state(next.sys) + "#" +
                      std::to_string(sends_used);
    if (!visited.insert(std::move(key)).second) return;
    next.sys.check_invariants();
    ++stats.states_visited;
    frontier.push_back(std::move(next));
    stats.frontier_peak = std::max(stats.frontier_peak, frontier.size());
  };

  while (!frontier.empty()) {
    if (stats.states_visited >= config.max_states) {
      stats.truncated = true;
      break;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();

    // Environment: candidate VS views, client sends, registrations.
    for (const View& v : config.candidate_views) {
      if (node.sys.can_vs_createview(v)) {
        expand(node,
               impl::DvsImplAction::with_view(
                   impl::DvsImplActionKind::kVsCreateview, v.id().origin(), v),
               node.sends_used);
      }
    }
    for (ProcessId p : universe) {
      if (node.sends_used < config.send_budget) {
        expand(node,
               impl::DvsImplAction::send(
                   p, ClientMsg{OpaqueMsg{node.sends_used + 1, p}}),
               node.sends_used + 1);
      }
      // Register only when it changes something: a re-register appends yet
      // another "registered" message without any new information, which
      // would make the reachable state space infinite.
      {
        const impl::VsToDvs& n = node.sys.node(p);
        if (n.client_cur().has_value() && !n.reg(n.client_cur()->id())) {
          expand(node,
                 impl::DvsImplAction::make(
                     impl::DvsImplActionKind::kDvsRegister, p),
                 node.sends_used);
        }
      }
    }
    // All enabled system actions.
    for (const impl::DvsImplAction& a : node.sys.enabled_actions()) {
      expand(node, a, node.sends_used);
    }
  }
  return stats;
}

}  // namespace dvs::explorer
