// Exhaustive small-scope model checking of the DVS specification.
//
// Where the randomized explorers sample executions, this module enumerates
// *every* reachable state of the DVS automaton for a bounded environment
// (a fixed set of candidate views the membership service may create, and a
// bounded number of client sends) and checks Invariants 4.1 and 4.2 on
// each. For small scopes this is a proof by state enumeration rather than
// a statistical argument — the strongest form of experiment E2/E3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "impl/dvs_impl.h"
#include "impl/refinement.h"
#include "spec/dvs_spec.h"

namespace dvs::explorer {

struct ExhaustiveConfig {
  /// The views DVS-CREATEVIEW may propose (subject to its precondition).
  std::vector<View> candidate_views;
  /// Total number of client sends across all processes.
  std::size_t send_budget = 1;
  /// Safety valve: stop after visiting this many states.
  std::size_t max_states = 2'000'000;
};

struct ExhaustiveStats {
  std::size_t states_visited = 0;
  std::size_t transitions = 0;
  std::size_t frontier_peak = 0;
  /// True if max_states stopped the search before the frontier drained
  /// (coverage is then partial).
  bool truncated = false;
};

/// Enumerates the reachable states of DvsSpec under the bounded environment
/// and checks the invariants on every one. Throws InvariantViolation on the
/// first failure.
[[nodiscard]] ExhaustiveStats exhaustive_check_dvs_spec(
    const ProcessSet& universe, const View& v0, const ExhaustiveConfig& config);

/// Canonical string encoding of a DvsSpec state (used as the visited-set
/// key; exposed for tests).
[[nodiscard]] std::string encode_state(const spec::DvsSpec& spec);

/// Exhaustive enumeration of DVS-IMPL (the Section 5 composition) for a
/// bounded environment: every reachable state is checked against
/// Invariants 5.1–5.6 AND every transition is validated by the step-wise
/// refinement checker — Theorem 5.9 by enumeration for the scope.
/// Registration actions are always available; client sends are bounded by
/// send_budget; VS views come from candidate_views.
[[nodiscard]] ExhaustiveStats exhaustive_check_dvs_impl(
    const ProcessSet& universe, const View& v0, const ExhaustiveConfig& config);

/// Canonical encoding of a DVS-IMPL state (exposed for tests).
[[nodiscard]] std::string encode_state(const impl::DvsImplSystem& sys);

}  // namespace dvs::explorer
