// Exhaustive small-scope model checking of the DVS specification.
//
// Where the randomized explorers sample executions, this module enumerates
// *every* reachable state of the DVS automaton for a bounded environment
// (a fixed set of candidate views the membership service may create, and a
// bounded number of client sends) and checks Invariants 4.1 and 4.2 on
// each. For small scopes this is a proof by state enumeration rather than
// a statistical argument — the strongest form of experiment E2/E3.
//
// Visited states are keyed by a 128-bit hash of a compact binary encoding
// (parallel/state_hash.h) rather than by the encoding itself; set
// `paranoid_collision_check` to retain the full encodings and turn any
// hash collision into a hard error.
//
// With `jobs > 1` (or 0 = hardware_concurrency) the search runs as a
// level-synchronized parallel BFS: workers split each depth level, dedup
// against a shard-locked visited set, and the per-level tallies are merged
// in a fixed order — so `states_visited` and `transitions` are exact and
// thread-count independent whenever the scope completes (not truncated).
// See docs/PERFORMANCE.md for the determinism contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "common/view.h"
#include "impl/dvs_impl.h"
#include "impl/refinement.h"
#include "spec/dvs_spec.h"

namespace dvs::explorer {

struct ExhaustiveConfig {
  /// The views DVS-CREATEVIEW may propose (subject to its precondition).
  std::vector<View> candidate_views;
  /// Total number of client sends across all processes.
  std::size_t send_budget = 1;
  /// Safety valve: stop after visiting this many states. The serial search
  /// stops mid-level at exactly this count; the parallel search always
  /// finishes the depth level it is on (keeping truncated counts
  /// deterministic), so it may overshoot by up to one level.
  std::size_t max_states = 2'000'000;
  /// Worker threads: 1 = serial BFS (the default), 0 = one per hardware
  /// thread, N = exactly N workers.
  std::size_t jobs = 1;
  /// Lock shards of the parallel visited set.
  std::size_t shards = 64;
  /// Keep every state's full binary encoding alongside its hash and verify
  /// it on every hit (memory-hungry; for soak runs and tests).
  bool paranoid_collision_check = false;
};

struct ExhaustiveStats {
  std::size_t states_visited = 0;
  std::size_t transitions = 0;
  /// Serial: max queued states. Parallel: widest BFS level.
  std::size_t frontier_peak = 0;
  /// True if max_states stopped the search before the frontier drained
  /// (coverage is then partial).
  bool truncated = false;
};

/// Enumerates the reachable states of DvsSpec under the bounded environment
/// and checks the invariants on every one. Throws InvariantViolation on the
/// first failure.
[[nodiscard]] ExhaustiveStats exhaustive_check_dvs_spec(
    const ProcessSet& universe, const View& v0, const ExhaustiveConfig& config);

/// Canonical string encoding of a DvsSpec state (human-readable; exposed
/// for tests — the search itself uses encode_state_binary).
[[nodiscard]] std::string encode_state(const spec::DvsSpec& spec);

/// Compact binary encoding of a DvsSpec state, appended to `w`. Injective
/// on reachable states: two states encode equal iff the string encodings
/// are equal. This is the hot-path form the visited-set key hashes.
void encode_state_binary(const spec::DvsSpec& spec, Writer& w);

/// Exhaustive enumeration of DVS-IMPL (the Section 5 composition) for a
/// bounded environment: every reachable state is checked against
/// Invariants 5.1–5.6 AND every transition is validated by the step-wise
/// refinement checker — Theorem 5.9 by enumeration for the scope.
/// Registration actions are always available; client sends are bounded by
/// send_budget; VS views come from candidate_views.
[[nodiscard]] ExhaustiveStats exhaustive_check_dvs_impl(
    const ProcessSet& universe, const View& v0, const ExhaustiveConfig& config);

/// Canonical encoding of a DVS-IMPL state (exposed for tests).
[[nodiscard]] std::string encode_state(const impl::DvsImplSystem& sys);

/// Compact binary encoding of a DVS-IMPL state, appended to `w`.
void encode_state_binary(const impl::DvsImplSystem& sys, Writer& w);

}  // namespace dvs::explorer
