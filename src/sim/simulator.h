// Discrete-event simulation kernel.
//
// Deterministic: events fire in (time, sequence-number) order, and all
// randomness is injected by the caller through a seeded Rng — so any run is
// exactly reproducible from its seed.
//
// Time is in integer microseconds; using an integral clock keeps event
// ordering exact across platforms.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/small_callback.h"

namespace dvs::sim {

/// Simulated time in microseconds.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

class Simulator {
 public:
  // SmallCallback instead of std::function: event closures (captures of
  // this + a couple of shared_ptrs or a payload buffer) overflow
  // std::function's two-word inline buffer and would heap-allocate per
  // scheduled event on this hot path.
  using Callback = SmallCallback;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).
  void schedule_at(Time at, Callback fn);

  /// Schedules `fn` after `delay` from now.
  void schedule_after(Time delay, Callback fn);

  /// Fires the next event; returns false if the queue is empty.
  bool step();

  /// Runs until the queue is drained or simulated time exceeds `deadline`.
  /// Events scheduled at exactly `deadline` still fire.
  void run_until(Time deadline);

  /// Runs until the queue is drained (only safe when the workload is
  /// finite, e.g. no periodic timers).
  void run_all();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Timestamp of the earliest pending event, if any. A wall-clock driver
  /// (the dvsd daemon) uses this to bound its poll timeout: sleep until the
  /// next timer is due or a datagram arrives, then run_until(elapsed).
  [[nodiscard]] std::optional<Time> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.top().at;
  }

 private:
  // The heap holds only POD tickets; callbacks live in a slot pool indexed
  // by the ticket. Sifting a ticket through the priority queue is a
  // 24-byte trivial move instead of dragging the callback storage along,
  // and freed slots are recycled so steady-state scheduling does not
  // allocate.
  struct Event {
    Time at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Callback> slots_;
  std::vector<std::uint32_t> free_slots_;
};

/// A cancellable periodic timer built on the simulator (heartbeats, ack
/// gossip, membership probes).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, Simulator::Callback fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return *alive_ && started_; }

 private:
  void arm();

  Simulator& sim_;
  Time period_;
  Simulator::Callback fn_;
  bool started_ = false;
  // Shared liveness flag: scheduled closures check it so a destroyed or
  // stopped timer never fires.
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::uint64_t> generation_;
};

}  // namespace dvs::sim
