#include "sim/simulator.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace dvs::sim {

void Simulator::schedule_at(Time at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at in the past");
  }
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(Time delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out, so
  // copy the bookkeeping first, then pop and run.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++events_fired_;
  ev.fn();
  return true;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Time period,
                             Simulator::Callback fn)
    : sim_(sim),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)),
      generation_(std::make_shared<std::uint64_t>(0)) {
  if (period == 0) throw std::logic_error("PeriodicTimer with zero period");
}

PeriodicTimer::~PeriodicTimer() { *alive_ = false; }

void PeriodicTimer::start() {
  if (started_) return;
  started_ = true;
  ++*generation_;
  arm();
}

void PeriodicTimer::stop() {
  started_ = false;
  ++*generation_;  // invalidate in-flight arms
}

void PeriodicTimer::arm() {
  const auto alive = alive_;
  const auto generation = generation_;
  const std::uint64_t expected = *generation_;
  sim_.schedule_after(period_, [this, alive, generation, expected] {
    if (!*alive || *generation != expected) return;
    fn_();
    if (*alive && *generation == expected) arm();
  });
}

}  // namespace dvs::sim
