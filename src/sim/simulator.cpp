#include "sim/simulator.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace dvs::sim {

void Simulator::schedule_at(Time at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at in the past");
  }
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  }
  queue_.push(Event{at, next_seq_++, slot});
}

void Simulator::schedule_after(Time delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const Event ev = queue_.top();
  queue_.pop();
  // Move the callback out and recycle its slot BEFORE running it: the
  // callback may schedule (growing or reusing slots_), so no reference
  // into the pool can be held across the call.
  Callback fn = std::move(slots_[ev.slot]);
  slots_[ev.slot] = {};
  free_slots_.push_back(ev.slot);
  now_ = ev.at;
  ++events_fired_;
  fn();
  return true;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Time period,
                             Simulator::Callback fn)
    : sim_(sim),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)),
      generation_(std::make_shared<std::uint64_t>(0)) {
  if (period == 0) throw std::logic_error("PeriodicTimer with zero period");
}

PeriodicTimer::~PeriodicTimer() { *alive_ = false; }

void PeriodicTimer::start() {
  if (started_) return;
  started_ = true;
  ++*generation_;
  arm();
}

void PeriodicTimer::stop() {
  started_ = false;
  ++*generation_;  // invalidate in-flight arms
}

void PeriodicTimer::arm() {
  const auto alive = alive_;
  const auto generation = generation_;
  const std::uint64_t expected = *generation_;
  sim_.schedule_after(period_, [this, alive, generation, expected] {
    if (!*alive || *generation != expected) return;
    fn_();
    if (*alive && *generation == expected) arm();
  });
}

}  // namespace dvs::sim
